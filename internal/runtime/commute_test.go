package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiprio/internal/platform"
)

func commuteTask(kind string, acc ...Access) *Task {
	return &Task{Kind: kind, Cost: []float64{0.001}, Accesses: acc}
}

func TestCommuteTasksDoNotDependOnEachOther(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	w := g.Submit(commuteTask("w", Access{h, W}))
	c1 := g.Submit(commuteTask("c1", Access{h, Commute}))
	c2 := g.Submit(commuteTask("c2", Access{h, Commute}))
	c3 := g.Submit(commuteTask("c3", Access{h, Commute}))

	for _, c := range []*Task{c1, c2, c3} {
		if c.NumPreds() != 1 || g.Preds(c)[0] != w {
			t.Errorf("%s preds = %v, want only the writer", c.Kind, g.Preds(c))
		}
	}
}

func TestReadClosesCommuteGroup(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	c1 := g.Submit(commuteTask("c1", Access{h, Commute}))
	c2 := g.Submit(commuteTask("c2", Access{h, Commute}))
	r := g.Submit(commuteTask("r", Access{h, R}))
	c3 := g.Submit(commuteTask("c3", Access{h, Commute}))

	preds := map[*Task]bool{}
	for _, p := range g.Preds(r) {
		preds[p] = true
	}
	if !preds[c1] || !preds[c2] || len(preds) != 2 {
		t.Errorf("reader preds = %v, want both commuters", g.Preds(r))
	}
	// The post-read commuter starts a new group ordered after the read.
	if c3.NumPreds() != 1 || g.Preds(c3)[0] != r {
		t.Errorf("c3 preds = %v, want the reader", g.Preds(c3))
	}
}

func TestWriteClosesCommuteGroup(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	c1 := g.Submit(commuteTask("c1", Access{h, Commute}))
	c2 := g.Submit(commuteTask("c2", Access{h, Commute}))
	w := g.Submit(commuteTask("w", Access{h, RW}))

	preds := map[*Task]bool{}
	for _, p := range g.Preds(w) {
		preds[p] = true
	}
	if !preds[c1] || !preds[c2] {
		t.Errorf("writer preds = %v, want both commuters", g.Preds(w))
	}
}

func TestCommuteAfterReaders(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	w := g.Submit(commuteTask("w", Access{h, W}))
	r := g.Submit(commuteTask("r", Access{h, R}))
	c := g.Submit(commuteTask("c", Access{h, Commute}))
	_ = w
	preds := map[*Task]bool{}
	for _, p := range g.Preds(c) {
		preds[p] = true
	}
	if !preds[r] {
		t.Errorf("commuter must wait for earlier readers; preds = %v", g.Preds(c))
	}
}

func TestCommuteModeProperties(t *testing.T) {
	if !Commute.IsWrite() || !Commute.IsRead() {
		t.Error("Commute must read and write")
	}
	if Commute.String() != "RW|COMMUTE" {
		t.Errorf("String = %q", Commute.String())
	}
}

func TestCommuteHandlesSortedAndDeduped(t *testing.T) {
	g := NewGraph()
	h1 := g.NewData("a", 8)
	h2 := g.NewData("b", 8)
	task := commuteTask("t",
		Access{h2, Commute}, Access{h1, Commute},
		Access{h2, Commute}, Access{h1, R})
	hs := task.CommuteHandles(nil)
	if len(hs) != 2 || hs[0] != h1 || hs[1] != h2 {
		t.Errorf("CommuteHandles = %v", hs)
	}
	plain := commuteTask("p", Access{h1, RW})
	if len(plain.CommuteHandles(nil)) != 0 {
		t.Error("non-commute access leaked into CommuteHandles")
	}
}

// TestCommuteMutualExclusionThreaded runs many commuting increments on
// the real engine: without the exec-time locks the unsynchronized
// counter would lose updates (and the race detector would fire).
func TestCommuteMutualExclusionThreaded(t *testing.T) {
	g := NewGraph()
	h := g.NewData("acc", 8)
	counter := 0
	var concurrent, maxConcurrent atomic.Int32
	const n = 40
	for i := 0; i < n; i++ {
		g.Submit(&Task{
			Kind: "add", Cost: []float64{0.0001},
			Accesses: []Access{{Handle: h, Mode: Commute}},
			Run: func(w WorkerInfo) {
				c := concurrent.Add(1)
				for {
					m := maxConcurrent.Load()
					if c <= m || maxConcurrent.CompareAndSwap(m, c) {
						break
					}
				}
				counter++ // protected by the commute lock
				time.Sleep(200 * time.Microsecond)
				concurrent.Add(-1)
			},
		})
	}
	eng := &ThreadedEngine{Machine: platform.CPUOnly(8), Sched: &fifoSched{}}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	if counter != n {
		t.Errorf("counter = %d, want %d (lost updates)", counter, n)
	}
	if maxConcurrent.Load() != 1 {
		t.Errorf("max concurrency on one handle = %d, want 1", maxConcurrent.Load())
	}
}

// TestCommuteDistinctHandlesRunConcurrently checks the locks are
// per-handle, not global.
func TestCommuteDistinctHandlesRunConcurrently(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	wg.Add(2)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		h := g.NewData("x", 8)
		g.Submit(&Task{
			Kind: "c", Cost: []float64{0.001},
			Accesses: []Access{{Handle: h, Mode: Commute}},
			Run: func(w WorkerInfo) {
				wg.Done() // both running at once proves independence
				<-release
			},
		})
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		<-done
		close(release)
	}()
	eng := &ThreadedEngine{Machine: platform.CPUOnly(4), Sched: &fifoSched{}}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("tasks on distinct handles did not overlap")
	}
}
