// Package runtime implements a Sequential-Task-Flow (STF) task runtime in
// the style of StarPU (Augonnet et al., CCPE 2011): applications declare
// data handles, submit tasks with per-handle access modes in sequential
// order, and the runtime infers the DAG automatically from the data
// dependencies. Schedulers plug in through the Scheduler interface with
// the PUSH (task became ready) and POP (worker idle) operations described
// in Section IV-A of the paper.
//
// Two execution engines consume this package: the threaded engine in this
// package (real goroutine workers running real Go kernels) and the
// discrete-event simulator in internal/sim (virtual time, heterogeneous
// platforms, data transfers). Both drive the same scheduler
// implementations.
package runtime

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"multiprio/internal/platform"
)

// AccessMode declares how a task accesses a data handle, following
// StarPU's STF access modes.
type AccessMode uint8

// Access modes. W is write-only (contents overwritten), RW is
// read-modify-write. For dependency inference W and RW are equivalent;
// for data transfers a W access does not require fetching the old value.
//
// Commute is StarPU's STARPU_COMMUTE combined with RW: a set of
// consecutive commutative updates to the same handle may execute in any
// order (no dependencies among themselves) but never concurrently (the
// engines serialize them with per-handle locks at execution time).
// TBFMM's P2P and L2P force accumulations are the canonical use.
const (
	R AccessMode = iota + 1
	W
	RW
	Commute
)

// String returns the conventional short name of the mode.
func (m AccessMode) String() string {
	switch m {
	case R:
		return "R"
	case W:
		return "W"
	case RW:
		return "RW"
	case Commute:
		return "RW|COMMUTE"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// IsWrite reports whether the mode writes the handle.
func (m AccessMode) IsWrite() bool { return m == W || m == RW || m == Commute }

// IsRead reports whether the mode reads the previous handle contents.
func (m AccessMode) IsRead() bool { return m == R || m == RW || m == Commute }

// DataHandle is a piece of application data registered with the runtime.
// Tasks access handles through Access entries; the runtime infers
// dependencies and (in the simulator) tracks replicas across memory
// nodes.
type DataHandle struct {
	ID    int64
	Name  string
	Bytes int64
	// Home is the memory node where the data initially resides.
	Home platform.MemID
	// Payload carries the real data for the threaded engine (e.g. a
	// *[]float64 tile). The simulator ignores it.
	Payload any

	// STF inference state (owned by Graph.Submit, not synchronized:
	// submission is sequential by definition of the model).
	lastWriter *Task
	readers    []*Task
	// commuters is the open group of commutative updaters since the
	// last exclusive access; they don't depend on one another, and the
	// next non-commute access depends on all of them.
	commuters []*Task
	// commuteMu serializes commuting updaters at execution time on the
	// threaded engine (the simulator uses virtual-time locks instead).
	commuteMu sync.Mutex
}

// Access pairs a handle with an access mode.
type Access struct {
	Handle *DataHandle
	Mode   AccessMode
}

// Task is one node of the application DAG.
type Task struct {
	ID   int64
	Kind string // kernel name, the performance-model key
	// Footprint buckets the task in the performance model (typically
	// the tile width or another granularity proxy).
	Footprint uint64
	// Flops is the arithmetic work, used by cost models and reporting.
	Flops float64
	// Priority is the application-provided static priority exploited by
	// the dmdas scheduler (0 when the application sets none, as in the
	// paper's TBFMM and QR_MUMPS runs).
	Priority int
	Accesses []Access
	// Cost[a] is the reference execution time in seconds of this task
	// on architecture a (speed factor 1). A zero, negative, NaN or
	// missing entry means the task has no implementation for a.
	Cost []float64
	// Run is the real kernel executed by the threaded engine; the
	// simulator never calls it.
	Run func(w WorkerInfo)

	// Tag is free for application use (e.g. tile coordinates).
	Tag any

	// DAG state.
	succs     []*Task
	npreds    int32
	remaining atomic.Int32
	claimed   atomic.Bool
	// depMark is the Graph.depEpoch value of the last submission that
	// recorded this task as a dependency; it replaces the per-handle
	// linear re-scan of the dependency list with an O(1) check, making
	// wide-fanout submission O(deps) instead of O(deps²).
	depMark int64

	// Execution record, filled by the engines (virtual or wall-clock
	// seconds since the start of the run).
	ReadyAt float64
	StartAt float64
	EndAt   float64
	RanOn   platform.UnitID

	// SchedData is scratch space owned by the active scheduler.
	SchedData any
}

// CanRun reports whether the task has an implementation for arch.
func (t *Task) CanRun(a platform.ArchID) bool {
	if int(a) >= len(t.Cost) || a < 0 {
		return false
	}
	c := t.Cost[a]
	return c > 0 && !math.IsNaN(c) && !math.IsInf(c, 0)
}

// BaseCost returns the reference cost of the task on arch and whether an
// implementation exists.
func (t *Task) BaseCost(a platform.ArchID) (float64, bool) {
	if !t.CanRun(a) {
		return 0, false
	}
	return t.Cost[a], true
}

// Succs returns the direct successors λ+(t) known so far. The slice is
// owned by the runtime; callers must not mutate it.
func (t *Task) Succs() []*Task { return t.succs }

// NumPreds returns |λ−(t)|, the number of direct predecessors.
func (t *Task) NumPreds() int { return int(t.npreds) }

// NumPredsOn returns |λ−(t, P_m)| restricted to predecessors executable
// on architecture a, as used by the NOD criticality heuristic (Eq. 2).
func (t *Task) NumPredsOn(a platform.ArchID, g *Graph) int {
	n := 0
	for _, p := range g.preds[t.ID] {
		if p.CanRun(a) {
			n++
		}
	}
	return n
}

// ReleaseDep atomically decrements the unfinished-predecessor counter
// and reports whether the task just became ready. Execution engines call
// it once per completed predecessor.
func (t *Task) ReleaseDep() bool {
	n := t.remaining.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("runtime: task %d dependency counter underflow", t.ID))
	}
	return n == 0
}

// TryClaim atomically claims the task for execution. Tasks are duplicated
// across per-memory-node priority queues; the first worker to claim wins
// and the other copies become stale (removed lazily by the schedulers).
func (t *Task) TryClaim() bool {
	return t.claimed.CompareAndSwap(false, true)
}

// Claimed reports whether some worker already claimed the task.
func (t *Task) Claimed() bool { return t.claimed.Load() }

// ResetExecState clears claim/dependency/execution state so the same
// graph can be run again (used by experiments that compare schedulers on
// one DAG). Dependency counters are rebuilt by Graph.ResetRun.
func (t *Task) ResetExecState() {
	t.claimed.Store(false)
	t.remaining.Store(t.npreds)
	t.ReadyAt, t.StartAt, t.EndAt = 0, 0, 0
	t.RanOn = 0
	t.SchedData = nil
}

// ResetForRetry rolls the task back to the ready state after a failed
// execution attempt (fault recovery): the claim and execution stamps
// clear so a scheduler can hand it out again, while the dependency
// counter stays at zero — predecessors completed and their results are
// recoverable from the STF coherence state, so only this task re-runs.
func (t *Task) ResetForRetry() {
	t.claimed.Store(false)
	t.StartAt, t.EndAt = 0, 0
	t.RanOn = 0
}

// WorkerInfo describes the worker invoking a scheduler or kernel.
type WorkerInfo struct {
	ID   platform.UnitID
	Arch platform.ArchID
	Mem  platform.MemID
}

// CommuteHandles appends to dst the distinct handles the task accesses
// in Commute mode, sorted by handle ID (the canonical lock order), and
// returns the extended slice. Execution engines serialize commuting
// tasks by locking these before running the kernel.
func (t *Task) CommuteHandles(dst []*DataHandle) []*DataHandle {
	start := len(dst)
	for _, a := range t.Accesses {
		if a.Mode != Commute {
			continue
		}
		dup := false
		for _, h := range dst[start:] {
			if h.ID == a.Handle.ID {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, a.Handle)
		}
	}
	s := dst[start:]
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	return dst
}

// LockCommute acquires the execution-time mutual-exclusion locks of the
// task's commute handles (in canonical order) for the threaded engine.
// The returned function releases them; it is a no-op pair when the task
// has no commute accesses.
func (t *Task) LockCommute() (unlock func()) {
	hs := t.CommuteHandles(nil)
	if len(hs) == 0 {
		return func() {}
	}
	for _, h := range hs {
		h.commuteMu.Lock()
	}
	return func() {
		for i := len(hs) - 1; i >= 0; i-- {
			hs[i].commuteMu.Unlock()
		}
	}
}

// TotalBytes returns the summed sizes of the task's accesses, counting
// each distinct handle once.
func (t *Task) TotalBytes() int64 {
	var sum int64
	seen := make(map[int64]bool, len(t.Accesses))
	for _, a := range t.Accesses {
		if !seen[a.Handle.ID] {
			seen[a.Handle.ID] = true
			sum += a.Handle.Bytes
		}
	}
	return sum
}
