package runtime

import "testing"

func TestPracticalCriticalPath(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	a := g.Submit(&Task{Kind: "a", Cost: []float64{1}, Accesses: []Access{{Handle: h, Mode: W}}})
	b := g.Submit(&Task{Kind: "b", Cost: []float64{1}, Accesses: []Access{{Handle: h, Mode: RW}}})
	c := g.Submit(&Task{Kind: "c", Cost: []float64{1}}) // independent, fast
	a.StartAt, a.EndAt = 0, 1
	b.StartAt, b.EndAt = 1, 3
	c.StartAt, c.EndAt = 0, 0.5

	path := PracticalCriticalPath(g)
	if len(path) != 2 || path[0] != a || path[1] != b {
		t.Errorf("critical path = %v, want [a b]", kinds(path))
	}
}

func TestPracticalCriticalPathEmpty(t *testing.T) {
	g := NewGraph()
	if p := PracticalCriticalPath(g); p != nil {
		t.Errorf("critical path of empty graph = %v", p)
	}
	// Unexecuted graph (EndAt zero everywhere) also yields nil.
	g.Submit(&Task{Kind: "a", Cost: []float64{1}})
	if p := PracticalCriticalPath(g); p != nil {
		t.Errorf("critical path of unexecuted graph = %v", p)
	}
}

func kinds(ts []*Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}
