package runtime

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"multiprio/internal/obs"
)

// ErrWatchdog is wrapped by the error both engines return when the
// progress watchdog aborts a wedged run. Match with errors.Is.
var ErrWatchdog = errors.New("watchdog deadline exceeded")

// DefaultWatchdogTail is how many recent scheduler decisions the
// watchdog keeps for its diagnostic dump.
const DefaultWatchdogTail = 32

// Watchdog configures the engines' progress watchdog. A run that has
// not completed Deadline of wall-clock time after Run was entered is
// aborted with ErrWatchdog, and a diagnostic dump — the tail of the
// scheduler decision log plus per-worker state — is written to Out, so
// a hang becomes a diagnosable failure instead of a silent CI timeout.
// The deadline is wall-clock in both engines: the simulator's virtual
// clock cannot hang, but its event loop can (a scheduler that never
// pops, a starved commute lock), and wall time is what CI kills on.
type Watchdog struct {
	// Deadline arms the watchdog when > 0.
	Deadline time.Duration
	// Out receives the diagnostic dump. Nil means os.Stderr.
	Out io.Writer
	// Tail is how many recent decisions to keep. 0 means
	// DefaultWatchdogTail.
	Tail int
}

// Armed reports whether the watchdog is active.
func (w Watchdog) Armed() bool { return w.Deadline > 0 }

// Output returns the effective dump destination.
func (w Watchdog) Output() io.Writer {
	if w.Out != nil {
		return w.Out
	}
	return os.Stderr
}

// TailLen returns the effective decision-tail length.
func (w Watchdog) TailLen() int {
	if w.Tail > 0 {
		return w.Tail
	}
	return DefaultWatchdogTail
}

// DecisionTail is an obs.Probe keeping a ring buffer of the most recent
// scheduler decisions, so the watchdog can show what the scheduler was
// doing when a run wedged. It is safe for concurrent use (the threaded
// engine probes from many goroutines) and fans in alongside any
// user-attached probe via obs.Multi.
type DecisionTail struct {
	mu   sync.Mutex
	ring []obs.Decision
	next int
	full bool
}

// NewDecisionTail returns a tail keeping the last n decisions.
func NewDecisionTail(n int) *DecisionTail {
	if n <= 0 {
		n = DefaultWatchdogTail
	}
	return &DecisionTail{ring: make([]obs.Decision, n)}
}

// Decision implements obs.Probe.
func (d *DecisionTail) Decision(dec obs.Decision) {
	d.mu.Lock()
	d.ring[d.next] = dec
	d.next++
	if d.next == len(d.ring) {
		d.next = 0
		d.full = true
	}
	d.mu.Unlock()
}

// Counter implements obs.Probe (counters are not kept).
func (d *DecisionTail) Counter(string, float64, int64, float64) {}

// Tail returns the retained decisions, oldest first.
func (d *DecisionTail) Tail() []obs.Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.full {
		return append([]obs.Decision(nil), d.ring[:d.next]...)
	}
	out := make([]obs.Decision, 0, len(d.ring))
	out = append(out, d.ring[d.next:]...)
	out = append(out, d.ring[:d.next]...)
	return out
}

// Dump writes the retained decisions in the decision log's canonical
// text format, oldest first. (Named Dump, not WriteTo: it does not
// implement io.WriterTo.)
func (d *DecisionTail) Dump(w io.Writer) {
	tail := d.Tail()
	if len(tail) == 0 {
		fmt.Fprintln(w, "  (no scheduler decisions recorded)")
		return
	}
	for _, dec := range tail {
		fmt.Fprintf(w, "  %s\n", obs.FormatDecision(dec))
	}
}

// WatchdogProbe combines a user probe (possibly nil) with a decision
// tail, returning the probe the engine should install.
func WatchdogProbe(user obs.Probe, tail *DecisionTail) obs.Probe {
	if user == nil {
		return tail
	}
	return obs.Multi{user, tail}
}
