package runtime_test

import (
	"fmt"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// ExampleGraph_Submit shows the Sequential-Task-Flow API: declare
// handles, submit tasks with access modes, and let the runtime infer
// the dependency graph.
func ExampleGraph_Submit() {
	g := runtime.NewGraph()
	x := g.NewData("x", 8)

	producer := g.Submit(&runtime.Task{
		Kind: "produce", Cost: []float64{0.001},
		Accesses: []runtime.Access{{Handle: x, Mode: runtime.W}},
	})
	consumer := g.Submit(&runtime.Task{
		Kind: "consume", Cost: []float64{0.001},
		Accesses: []runtime.Access{{Handle: x, Mode: runtime.R}},
	})

	fmt.Println("consumer depends on", len(g.Preds(consumer)), "task:", g.Preds(consumer)[0].Kind)
	fmt.Println("producer releases", len(producer.Succs()), "task:", producer.Succs()[0].Kind)
	// Output:
	// consumer depends on 1 task: produce
	// producer releases 1 task: consume
}

// ExampleThreadedEngine_Run executes a graph on real goroutine workers
// under the MultiPrio scheduler.
func ExampleThreadedEngine_Run() {
	g := runtime.NewGraph()
	h := g.NewData("acc", 8)
	sum := 0
	for i := 1; i <= 3; i++ {
		v := i
		g.Submit(&runtime.Task{
			Kind: "add", Cost: []float64{1e-6},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}},
			Run:      func(w runtime.WorkerInfo) { sum += v },
		})
	}
	eng := &runtime.ThreadedEngine{
		Machine: platform.CPUOnly(2),
		Sched:   core.New(core.Defaults()),
	}
	if _, err := eng.Run(g); err != nil {
		panic(err)
	}
	fmt.Println("sum =", sum)
	// Output:
	// sum = 6
}

// ExampleAccessMode_commute shows the Commute mode: the updates carry
// no mutual ordering, only the final reader waits for all of them.
func ExampleAccessMode_commute() {
	g := runtime.NewGraph()
	h := g.NewData("forces", 8)
	for i := 0; i < 3; i++ {
		g.Submit(&runtime.Task{
			Kind: "accumulate", Cost: []float64{0.001},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.Commute}},
		})
	}
	reader := g.Submit(&runtime.Task{
		Kind: "report", Cost: []float64{0.001},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}},
	})
	deps := 0
	for _, t := range g.Tasks[:3] {
		deps += t.NumPreds()
	}
	fmt.Println("dependencies among accumulators:", deps)
	fmt.Println("reader waits for:", reader.NumPreds(), "accumulators")
	// Output:
	// dependencies among accumulators: 0
	// reader waits for: 3 accumulators
}
