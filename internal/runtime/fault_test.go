package runtime

import (
	"strings"
	"sync"
	"testing"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/platform"
)

func TestNewThreadedEngineNilArgs(t *testing.T) {
	if _, err := NewThreadedEngine(nil, &fifoSched{}); err == nil ||
		!strings.Contains(err.Error(), "nil machine") {
		t.Errorf("nil machine: err = %v, want descriptive error", err)
	}
	if _, err := NewThreadedEngine(platform.CPUOnly(2), nil); err == nil ||
		!strings.Contains(err.Error(), "nil scheduler") {
		t.Errorf("nil scheduler: err = %v, want descriptive error", err)
	}
	// A literal engine with nil fields must fail cleanly at Run, not
	// panic deep inside the worker loop.
	eng := &ThreadedEngine{}
	if _, err := eng.Run(NewGraph()); err == nil {
		t.Error("Run on zero-value engine accepted")
	}
}

// faultTestGraph builds a batch of independent sleeping kernels wide
// enough that kills land while work is still in flight.
func faultTestGraph(n int, d time.Duration) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		task := cpuTask("work", d.Seconds())
		task.Run = func(w WorkerInfo) { time.Sleep(d) }
		g.Submit(task)
	}
	return g
}

func TestThreadedEngineKillRecovery(t *testing.T) {
	g := faultTestGraph(24, 2*time.Millisecond)
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.KillWorker, Worker: 0, At: 0.004},
			{Kind: fault.KillWorker, Worker: 1, At: 0.007},
		},
		Backoff: 1e-4,
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(4), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 2 || len(res.Faults.AppliedKills) != 2 {
		t.Errorf("kills applied = %d (%v), want 2", res.Faults.Kills, res.Faults.AppliedKills)
	}
	// Exactly-once-effective: every task has exactly one successful
	// span, and no successful span outlives its worker's applied kill.
	killAt := map[platform.UnitID]float64{}
	for _, k := range res.Faults.AppliedKills {
		killAt[k.Unit] = k.At
	}
	okSpans := map[int64]int{}
	for _, s := range res.Trace.Spans {
		if s.Failed {
			continue
		}
		okSpans[s.TaskID]++
		if at, dead := killAt[s.Worker]; dead && s.End > at {
			t.Errorf("task %d committed on worker %d at %g, after its kill at %g",
				s.TaskID, s.Worker, s.End, at)
		}
	}
	for _, task := range g.Tasks {
		if okSpans[task.ID] != 1 {
			t.Errorf("task %d has %d successful spans, want 1", task.ID, okSpans[task.ID])
		}
	}
	if res.Trace.FailedCount() != res.Faults.Retries {
		t.Errorf("failed spans = %d, retries = %d; want equal",
			res.Trace.FailedCount(), res.Faults.Retries)
	}
	for _, w := range res.Workers {
		if _, dead := killAt[w.Unit]; dead != w.Dead {
			t.Errorf("worker %d Dead = %v, want %v", w.Unit, w.Dead, dead)
		}
	}
}

func TestThreadedEngineSlowdownStretches(t *testing.T) {
	d := 2 * time.Millisecond
	g := NewGraph()
	task := cpuTask("slow", d.Seconds())
	task.Run = func(w WorkerInfo) { time.Sleep(d) }
	g.Submit(task)
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 10, Factor: 4},
		{Kind: fault.SlowWorker, Worker: 1, At: 0, Until: 10, Factor: 4},
	}}
	eng, err := NewThreadedEngine(platform.CPUOnly(2), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Slowdowns != 1 {
		t.Errorf("slowdowns = %d, want 1", res.Faults.Slowdowns)
	}
	if got := task.EndAt - task.StartAt; got < 3*d.Seconds() {
		t.Errorf("slowed kernel span = %gs, want >= %gs (factor 4 over %gs)",
			got, 3*d.Seconds(), d.Seconds())
	}
}

// TestThreadedEngineKillDuringCommute exercises the completion-discard
// path while commute locks are held: the discarded attempt must release
// its locks so the retry (and other commuters) can proceed.
func TestThreadedEngineKillDuringCommute(t *testing.T) {
	g := NewGraph()
	acc := g.NewData("acc", 8)
	var mu sync.Mutex
	commits := 0
	for i := 0; i < 8; i++ {
		task := cpuTask("update", 0.002, Access{acc, Commute})
		task.Run = func(w WorkerInfo) {
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			commits++
			mu.Unlock()
		}
		g.Submit(task)
	}
	plan := &fault.Plan{
		Events:  []fault.Event{{Kind: fault.KillWorker, Worker: 0, At: 0.003}},
		Backoff: 1e-4,
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(3), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel side effects are not rolled back (the engines discard the
	// *completion*, not the computation), so commits may exceed the
	// task count by the number of discarded attempts.
	if commits < 8 {
		t.Errorf("commits = %d, want >= 8", commits)
	}
	if res.Faults.Kills != 1 {
		t.Errorf("kills = %d, want 1", res.Faults.Kills)
	}
}
