package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

const killAt = 0.005

// runFaultSim executes a batch of independent kernels with worker 0
// killed mid-task, guaranteeing at least one failed attempt.
func runFaultSim(t *testing.T) (*runtime.Graph, *sim.Result, *fault.Plan) {
	t.Helper()
	g := runtime.NewGraph()
	for i := 0; i < 10; i++ {
		g.Submit(&runtime.Task{Kind: "work", Cost: []float64{0.01, 0.001}})
	}
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.KillWorker, Worker: 0, At: killAt},
	}}
	res, err := sim.Run(testMachine(t), g, core.New(core.Defaults()), sim.Options{
		Seed: 1, CollectMemEvents: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Retries == 0 {
		t.Fatal("fault run produced no failed attempt; the scenario is mis-tuned")
	}
	return g, res, plan
}

func faultOpts(res *sim.Result, plan *fault.Plan, strict bool) Options {
	return Options{
		OverflowBytes: res.OverflowBytes,
		Faults: &FaultCheck{
			MaxRetries: plan.RetryCap(),
			Kills:      res.Faults.AppliedKills,
			Strict:     strict,
		},
	}
}

func TestFaultCheckAcceptsFaultRun(t *testing.T) {
	g, res, plan := runFaultSim(t)
	if err := Check(g, res.Trace, faultOpts(res, plan, true)); err != nil {
		t.Fatalf("valid fault run rejected: %v", err)
	}
}

// Without a FaultCheck the oracle keeps the strict exactly-once rule:
// any failed span in the trace is itself a violation.
func TestFailedSpanRejectedWithoutFaultCheck(t *testing.T) {
	g, res, _ := runFaultSim(t)
	err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes})
	if err == nil || !strings.Contains(err.Error(), "fault checking is not enabled") {
		t.Fatalf("err = %v, want failed-attempt violation", err)
	}
}

func TestFaultCheckRetryBudget(t *testing.T) {
	g, res, plan := runFaultSim(t)
	// Forge extra attempts of the already-failed task: degenerate spans
	// at the kill instant, so only the budget check can fire.
	var failed trace.Span
	for _, s := range res.Trace.Spans {
		if s.Failed {
			failed = s
			break
		}
	}
	for i := 0; i < 3; i++ {
		dup := failed
		dup.Start, dup.End, dup.Wait = killAt, killAt, 0
		res.Trace.Spans = append(res.Trace.Spans, dup)
	}
	opts := faultOpts(res, plan, true)
	opts.Faults.MaxRetries = 2
	err := Check(g, res.Trace, opts)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want retry-budget violation", err)
	}
}

func TestFaultCheckKillViolation(t *testing.T) {
	g, res, plan := runFaultSim(t)
	// Move one successful span (and its task record) onto the killed
	// worker, ending after the kill: a forged completion.
	for i := range res.Trace.Spans {
		s := &res.Trace.Spans[i]
		if s.Failed || s.Worker == 0 {
			continue
		}
		if s.End > killAt {
			for _, task := range g.Tasks {
				if task.ID == s.TaskID {
					task.RanOn = 0
				}
			}
			s.Worker = 0
			break
		}
	}
	err := Check(g, res.Trace, faultOpts(res, plan, false))
	if err == nil || !strings.Contains(err.Error(), "after its kill") {
		t.Fatalf("err = %v, want kill violation", err)
	}
}

// TestFaultCheckStrictMode: a failed attempt ending past the kill is
// legal under the threaded engine's completion-discard semantics
// (Strict off) but a violation under the simulator's abort semantics.
func TestFaultCheckStrictMode(t *testing.T) {
	g, res, plan := runFaultSim(t)
	for i := range res.Trace.Spans {
		s := &res.Trace.Spans[i]
		if s.Failed {
			s.End = killAt + 0.001
			break
		}
	}
	if err := Check(g, res.Trace, faultOpts(res, plan, false)); err != nil {
		t.Fatalf("completion-discard semantics rejected with Strict off: %v", err)
	}
	err := Check(g, res.Trace, faultOpts(res, plan, true))
	if err == nil || !strings.Contains(err.Error(), "after its kill") {
		t.Fatalf("err = %v, want strict kill violation", err)
	}
}

// TestFaultCheckRetryDependency: every attempt, failed or not, must
// respect dependencies — a retry forged to start before a predecessor's
// completion is a violation.
func TestFaultCheckRetryDependency(t *testing.T) {
	g, res, plan := runFaultSim(t)
	// Give the failed task a fake predecessor finishing after the
	// attempt started: pick any successful span that overlaps it.
	var failed *trace.Span
	for i := range res.Trace.Spans {
		if res.Trace.Spans[i].Failed {
			failed = &res.Trace.Spans[i]
			break
		}
	}
	var pred *runtime.Task
	var dependent *runtime.Task
	for _, task := range g.Tasks {
		if task.ID == failed.TaskID {
			dependent = task
		} else if task.EndAt > failed.Start && task.ID != failed.TaskID {
			pred = task
		}
	}
	if pred == nil || dependent == nil {
		t.Skip("no overlapping predecessor candidate in this schedule")
	}
	g.Declare(pred, dependent)
	err := Check(g, res.Trace, faultOpts(res, plan, true))
	if err == nil || !strings.Contains(err.Error(), "dependency violated") {
		t.Fatalf("err = %v, want dependency violation on the failed attempt", err)
	}
}
