package oracle

import (
	"sort"

	"multiprio/internal/stream"
)

// StreamCheck configures validation of streaming (online-ingestion)
// runs. The plan supplies the tenant partition, arrival schedule and
// admission limits; Admissions is the Fair wrapper's admission log
// (nil for runs without admission control — then only arrival gating
// and the per-tenant census are checked).
//
// The invariants:
//
//   - arrival gating: no attempt of a task — successful, failed or
//     cancelled — starts before the task's arrival time;
//   - per-tenant exactly-once: each tenant's task census in the trace
//     matches the plan exactly (the global exactly-once property of the
//     base oracle, refined per tenant);
//   - admission sanity: every task is admitted exactly once, not before
//     it was pushed, not before its arrival, and nothing runs before
//     its admission; within a tenant admissions are FIFO in push order;
//   - bounded in-flight: replaying admissions against completion times,
//     a tenant with limit L never has more than L tasks in flight;
//   - no cross-tenant starvation: a task whose admission was delayed
//     (AdmittedAt > PushedAt) waited only while its own tenant sat at
//     its limit — the replay finds every sub-saturated interval of the
//     tenant and rejects any overlap with a deferral window. A task
//     can therefore never be held back on another tenant's account.
type StreamCheck struct {
	Plan       *stream.Plan
	Admissions []stream.Admission
}

// checkStream validates the streaming invariants. It runs only when the
// base invariants hold, so spanOf is total over the graph's tasks.
func (c *checker) checkStream() {
	sc := c.opts.Stream
	p := sc.Plan
	if err := p.Validate(c.g); err != nil {
		c.failf("oracle: stream plan invalid: %v", err)
		return
	}
	c.checkArrivalGating(p)
	c.checkTenantCensus(p)
	if sc.Admissions != nil {
		c.checkAdmissions(p, sc.Admissions)
	}
}

// checkArrivalGating verifies no attempt starts before its arrival.
func (c *checker) checkArrivalGating(p *stream.Plan) {
	if p.Arrivals == nil {
		return
	}
	for _, t := range c.g.Tasks {
		at := p.Arrivals[t.ID]
		spans := append(append(c.attemptsOf[t.ID], c.cancelledOf[t.ID]...), c.spanOf[t.ID])
		for _, s := range spans {
			if s.Start < at-c.opts.Eps {
				c.failf("oracle: task %d (tenant %s) started at %g before its arrival at %g",
					t.ID, p.Name(p.Tenant(t.ID)), s.Start, at)
			}
		}
	}
}

// checkTenantCensus refines exactly-once per tenant: the successful
// spans of each tenant must match the plan's task counts.
func (c *checker) checkTenantCensus(p *stream.Plan) {
	want := p.TasksOf()
	got := make([]int, p.NumTenants())
	for _, t := range c.g.Tasks {
		if _, ok := c.spanOf[t.ID]; ok {
			got[p.Tenant(t.ID)]++
		}
	}
	for k := range want {
		if got[k] != want[k] {
			c.failf("oracle: tenant %s executed %d tasks, plan submits %d", p.Name(k), got[k], want[k])
		}
	}
}

// checkAdmissions replays the admission log against the trace.
func (c *checker) checkAdmissions(p *stream.Plan, log []stream.Admission) {
	eps := c.opts.Eps
	byTask := make(map[int64]*stream.Admission, len(log))
	for i := range log {
		a := &log[i]
		if prev, dup := byTask[a.Task]; dup {
			c.failf("oracle: task %d admitted twice (at %g and %g)", a.Task, prev.AdmittedAt, a.AdmittedAt)
			continue
		}
		byTask[a.Task] = a
		if a.Tenant != p.Tenant(a.Task) {
			c.failf("oracle: admission log assigns task %d to tenant %d, plan says %d", a.Task, a.Tenant, p.Tenant(a.Task))
		}
		if a.AdmittedAt < 0 {
			c.failf("oracle: task %d was pushed at %g but never admitted", a.Task, a.PushedAt)
			continue
		}
		if a.AdmittedAt < a.PushedAt-eps {
			c.failf("oracle: task %d admitted at %g before it was pushed at %g", a.Task, a.AdmittedAt, a.PushedAt)
		}
		if p.Arrivals != nil && a.PushedAt < p.Arrivals[a.Task]-eps {
			c.failf("oracle: task %d pushed at %g before its arrival at %g", a.Task, a.PushedAt, p.Arrivals[a.Task])
		}
	}
	for _, t := range c.g.Tasks {
		a, ok := byTask[t.ID]
		if !ok {
			c.failf("oracle: task %d executed without an admission log entry", t.ID)
			continue
		}
		spans := append(append(c.attemptsOf[t.ID], c.cancelledOf[t.ID]...), c.spanOf[t.ID])
		for _, s := range spans {
			if s.Start < a.AdmittedAt-eps {
				c.failf("oracle: task %d started at %g before its admission at %g", t.ID, s.Start, a.AdmittedAt)
			}
		}
	}
	if len(c.errs) > 0 {
		return
	}
	// Per-tenant replay: FIFO, the in-flight bound, and the starvation
	// rule. A task is in flight from its admission to the end of its
	// successful span.
	perTenant := make([][]*stream.Admission, p.NumTenants())
	for i := range log {
		a := &log[i]
		perTenant[a.Tenant] = append(perTenant[a.Tenant], a)
	}
	for k, adms := range perTenant {
		lim := p.Limit(k)
		// FIFO within the tenant: sort by push time; admission times
		// must be nondecreasing (an earlier push is never overtaken).
		sorted := append([]*stream.Admission(nil), adms...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].PushedAt < sorted[j].PushedAt })
		for i := 1; i < len(sorted); i++ {
			prev, cur := sorted[i-1], sorted[i]
			if prev.PushedAt < cur.PushedAt-eps && cur.AdmittedAt < prev.AdmittedAt-eps {
				c.failf("oracle: tenant %s FIFO violated: task %d (pushed %g) admitted at %g before task %d (pushed %g, admitted %g)",
					p.Name(k), cur.Task, cur.PushedAt, cur.AdmittedAt, prev.Task, prev.PushedAt, prev.AdmittedAt)
			}
		}
		if lim == 0 {
			// Unbounded: every admission must have been immediate.
			for _, a := range adms {
				if a.AdmittedAt > a.PushedAt+eps {
					c.failf("oracle: tenant %s is unbounded but task %d waited from %g to %g",
						p.Name(k), a.Task, a.PushedAt, a.AdmittedAt)
				}
			}
			continue
		}
		// In-flight sweep. Deltas at identical timestamps coalesce, so a
		// completion handing its slot to a pending task at the same
		// instant neither dips below nor spikes above the limit.
		type event struct {
			at    float64
			delta int
		}
		var events []event
		for _, a := range adms {
			events = append(events, event{a.AdmittedAt, +1})
			events = append(events, event{c.spanOf[a.Task].End, -1})
		}
		sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
		// gaps collects the maximal intervals where the tenant is below
		// its limit — intervals a deferral window must never overlap.
		type gap struct{ from, to float64 }
		var gaps []gap
		count := 0
		gapStart := 0.0 // below limit from t=0 until the first fill-up
		for i := 0; i < len(events); {
			j := i
			net := 0
			for j < len(events) && events[j].at == events[i].at {
				net += events[j].delta
				j++
			}
			was, at := count, events[i].at
			count += net
			if count > lim {
				c.failf("oracle: tenant %s has %d tasks in flight at %g, over its limit %d", p.Name(k), count, at, lim)
			}
			if was >= lim && count < lim {
				gapStart = at
			}
			if was < lim && count >= lim {
				gaps = append(gaps, gap{gapStart, at})
			}
			i = j
		}
		if count < lim {
			// Below limit from the last event on; close the final gap at
			// +inf via a sentinel the overlap test handles naturally.
			gaps = append(gaps, gap{gapStart, c.tr.Makespan + 1})
		}
		for _, a := range adms {
			if a.AdmittedAt <= a.PushedAt+eps {
				continue // immediate admission needs no justification
			}
			for _, gp := range gaps {
				lo, hi := gp.from, gp.to
				if a.PushedAt > lo {
					lo = a.PushedAt
				}
				if a.AdmittedAt < hi {
					hi = a.AdmittedAt
				}
				if hi > lo+eps {
					c.failf("oracle: starvation: task %d (tenant %s) waited [%g, %g] while its tenant was below limit during [%g, %g]",
						a.Task, p.Name(k), a.PushedAt, a.AdmittedAt, gp.from, gp.to)
					break
				}
			}
		}
	}
}
