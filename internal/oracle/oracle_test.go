package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

func testMachine(t *testing.T) *platform.Machine {
	t.Helper()
	m, err := platform.NewHeteroNode("oracle-test", 4, 10, 1, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testGraph builds a small DAG exercising every access mode: a writer,
// a read fan-out, a commute group, and a final reader joining it all.
func testGraph() *runtime.Graph {
	g := runtime.NewGraph()
	src := g.NewData("src", platform.MiB)
	acc := g.NewData("acc", platform.MiB)
	out := g.NewData("out", 8)
	g.Submit(&runtime.Task{Kind: "init", Cost: []float64{0.002, 0.001},
		Accesses: []runtime.Access{{Handle: src, Mode: runtime.W}}})
	for i := 0; i < 4; i++ {
		g.Submit(&runtime.Task{Kind: "update", Cost: []float64{0.004, 0.001},
			Accesses: []runtime.Access{
				{Handle: src, Mode: runtime.R},
				{Handle: acc, Mode: runtime.Commute},
			}})
	}
	g.Submit(&runtime.Task{Kind: "reduce", Cost: []float64{0.002, 0.002},
		Accesses: []runtime.Access{
			{Handle: acc, Mode: runtime.R},
			{Handle: out, Mode: runtime.W},
		}})
	return g
}

// runSim executes the test graph in the simulator with memory events on.
func runSim(t *testing.T) (*runtime.Graph, *sim.Result) {
	t.Helper()
	g := testGraph()
	res, err := sim.Run(testMachine(t), g, core.New(core.Defaults()), sim.Options{
		Seed: 1, CollectMemEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestCheckPassesOnSimulatedRun(t *testing.T) {
	g, res := runSim(t)
	if len(res.Trace.MemEvents) == 0 {
		t.Fatal("expected memory events to be collected")
	}
	if err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
}

func TestCheckPassesOnThreadedRun(t *testing.T) {
	m := platform.CPUOnly(4)
	g := testGraph()
	eng := &runtime.ThreadedEngine{Machine: m, Sched: core.New(core.Defaults())}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, res.Trace, Options{}); err != nil {
		t.Fatalf("valid threaded run rejected: %v", err)
	}
}

// expectViolation checks that tampering with a valid run is detected
// and that the report names the right invariant.
func expectViolation(t *testing.T, name, want string, tamper func(g *runtime.Graph, res *sim.Result)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		g, res := runSim(t)
		tamper(g, res)
		err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes})
		if err == nil {
			t.Fatalf("tampered run accepted")
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("violation report %q does not mention %q", err, want)
		}
	})
}

func TestCheckDetectsTampering(t *testing.T) {
	expectViolation(t, "lost task", "never executed", func(g *runtime.Graph, res *sim.Result) {
		res.Trace.Spans = res.Trace.Spans[:len(res.Trace.Spans)-1]
	})
	expectViolation(t, "double execution", "executed successfully twice", func(g *runtime.Graph, res *sim.Result) {
		res.Trace.Spans = append(res.Trace.Spans, res.Trace.Spans[0])
	})
	expectViolation(t, "unknown worker", "unknown worker", func(g *runtime.Graph, res *sim.Result) {
		res.Trace.Spans[0].Worker = 99
	})
	expectViolation(t, "record mismatch", "disagrees with span", func(g *runtime.Graph, res *sim.Result) {
		res.Trace.Spans[1].Start -= 1e-3
	})
	expectViolation(t, "dependency violation", "dependency violated", func(g *runtime.Graph, res *sim.Result) {
		// The reduce task depends on every commuter; move it to time 0
		// in both the span and the task record so only the dependency
		// check can fire.
		last := g.Tasks[len(g.Tasks)-1]
		for i := range res.Trace.Spans {
			s := &res.Trace.Spans[i]
			if s.TaskID == last.ID {
				w := s.End - s.Start
				s.Start, s.End, s.Wait = 0, w, 0
				last.StartAt, last.EndAt = 0, w
			}
		}
	})
	expectViolation(t, "commute overlap", "commute exclusivity", func(g *runtime.Graph, res *sim.Result) {
		// Slide one commuter's kernel on top of another's.
		var first *trace.Span
		for i := range res.Trace.Spans {
			s := &res.Trace.Spans[i]
			if s.Kind != "update" {
				continue
			}
			if first == nil {
				first = s
				continue
			}
			w := s.End - s.Start
			s.Start, s.End, s.Wait = first.Start, first.Start+w, 0
			for _, task := range g.Tasks {
				if task.ID == s.TaskID {
					task.StartAt, task.EndAt = s.Start, s.End
				}
			}
			break
		}
	})
	expectViolation(t, "wrong makespan", "makespan", func(g *runtime.Graph, res *sim.Result) {
		res.Trace.Makespan *= 2
	})
	expectViolation(t, "stale read", "version", func(g *runtime.Graph, res *sim.Result) {
		for i := range res.Trace.MemEvents {
			e := &res.Trace.MemEvents[i]
			if e.Kind == trace.MemValid && e.Version > 0 {
				e.Version--
				break
			}
		}
	})
	expectViolation(t, "phantom allocation", "allocated twice", func(g *runtime.Graph, res *sim.Result) {
		for i := range res.Trace.MemEvents {
			e := &res.Trace.MemEvents[i]
			if e.Kind == trace.MemAlloc {
				dup := *e
				dup.Seq = e.Seq + 1000000
				res.Trace.MemEvents = append(res.Trace.MemEvents, dup)
				break
			}
		}
	})
}

func TestCheckDetectsCapacityOverrun(t *testing.T) {
	// A machine whose GPU memory cannot hold the working set, with the
	// engine's own overflow report withheld from the oracle: the replay
	// must flag the overrun; passing the report must silence it.
	m, err := platform.NewHeteroNode("tiny-gpu", 4, 10, 1, 100, 2*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	hs := make([]*runtime.DataHandle, 6)
	for i := range hs {
		hs[i] = g.NewData("big", platform.MiB)
	}
	var accs []runtime.Access
	for _, h := range hs {
		accs = append(accs, runtime.Access{Handle: h, Mode: runtime.RW})
	}
	g.Submit(&runtime.Task{Kind: "hog", Cost: []float64{0.01, 0.001}, Accesses: accs})
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{CollectMemEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowBytes[1] == 0 {
		t.Fatal("expected the 2 MiB GPU node to overflow under a 6 MiB working set")
	}
	err = Check(g, res.Trace, Options{})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity overrun not flagged: %v", err)
	}
	if err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("reported overflow not tolerated: %v", err)
	}
}
