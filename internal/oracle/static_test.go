package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sim"
)

// staticRun executes a fault-free pinned replay and returns everything
// a StaticCheck needs. The check itself is assembled per test (and
// tampered with) from the plan.
func staticRun(t *testing.T) (*runtime.Graph, *sim.Result, *heft.Plan) {
	t.Helper()
	m := testMachine(t)
	g := randdag.Build(randdag.Params{Layers: 6, Width: 8, CommuteShare: 0.2, Machine: m, Seed: 13})
	hs := heft.NewStatic(heft.RankUpward)
	res, err := sim.Run(m, g, hs, sim.Options{Seed: 3, CollectMemEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, res, hs.Plan()
}

// checkFor assembles a fresh StaticCheck from the plan with deep-copied
// slices, so each tamper mutates its own copy.
func checkFor(p *heft.Plan) *StaticCheck {
	sc := &StaticCheck{
		Assignment:  append([]platform.UnitID(nil), p.Assignment...),
		Finish:      append([]float64(nil), p.Finish...),
		Makespan:    p.Makespan,
		SlackFactor: heft.DefaultSlackFactor,
	}
	for _, ord := range p.Order {
		sc.Order = append(sc.Order, append([]int64(nil), ord...))
	}
	return sc
}

func TestStaticCheckCleanRun(t *testing.T) {
	g, res, p := staticRun(t)
	if err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes, Static: checkFor(p),
	}); err != nil {
		t.Fatalf("clean pinned replay rejected: %v", err)
	}
}

func TestStaticCheckTampers(t *testing.T) {
	g, res, p := staticRun(t)
	// A worker with at least two planned tasks, for the order swap.
	var busyW int
	for w, ord := range p.Order {
		if len(ord) >= 2 {
			busyW = w
			break
		}
	}
	tampers := []struct {
		name    string
		mutate  func(*StaticCheck)
		wantErr string
	}{
		{
			"flipped assignment",
			func(sc *StaticCheck) {
				id := sc.Order[busyW][0]
				other := (busyW + 1) % len(p.Order)
				sc.Assignment[id] = platform.UnitID(other)
				// Keep the plan well-formed: move the order entry too, so
				// the tamper surfaces as a placement violation, not a
				// malformed plan.
				sc.Order[busyW] = sc.Order[busyW][1:]
				sc.Order[other] = append([]int64{id}, sc.Order[other]...)
			},
			"plan assigns worker",
		},
		{
			"swapped order",
			func(sc *StaticCheck) {
				ord := sc.Order[busyW]
				ord[0], ord[1] = ord[1], ord[0]
			},
			"against plan order",
		},
		{
			"forged kill repair",
			func(sc *StaticCheck) {
				sc.Repairs = []StaticRepair{{
					At: 0, Worker: platform.UnitID(busyW), Reason: "kill",
					Trigger: -1, Tasks: []int64{sc.Order[busyW][0]},
				}}
			},
			"no kill was applied",
		},
		{
			"forged slack repair",
			func(sc *StaticCheck) {
				id := sc.Order[busyW][0]
				sc.Repairs = []StaticRepair{{
					At: 0, Worker: platform.UnitID(busyW), Reason: "slack",
					Trigger: id, Tasks: []int64{id},
				}}
			},
			"within the",
		},
		{
			"double diversion",
			func(sc *StaticCheck) {
				id := sc.Order[busyW][0]
				sc.Kills = []runtime.AppliedKill{{Unit: platform.UnitID(busyW), At: 0}}
				sc.Repairs = []StaticRepair{
					{At: 0, Worker: platform.UnitID(busyW), Reason: "kill", Trigger: -1, Tasks: []int64{id}},
					{At: 0, Worker: platform.UnitID(busyW), Reason: "kill", Trigger: -1, Tasks: []int64{id}},
				}
			},
			"two repair events",
		},
		{
			"repair poaching another worker's task",
			func(sc *StaticCheck) {
				var foreign int64 = -1
				for _, ord2 := range sc.Order {
					for _, id := range ord2 {
						if sc.Assignment[id] != platform.UnitID(busyW) {
							foreign = id
						}
					}
				}
				if foreign < 0 {
					return // degenerate plan; the empty-tamper fallthrough fails the test
				}
				sc.Kills = []runtime.AppliedKill{{Unit: platform.UnitID(busyW), At: 0}}
				sc.Repairs = []StaticRepair{{
					At: 0, Worker: platform.UnitID(busyW), Reason: "kill",
					Trigger: -1, Tasks: []int64{foreign},
				}}
			},
			"planned on worker",
		},
		{
			"truncated plan",
			func(sc *StaticCheck) { sc.Assignment = sc.Assignment[:len(sc.Assignment)-1] },
			"covers",
		},
	}
	for _, tc := range tampers {
		t.Run(tc.name, func(t *testing.T) {
			sc := checkFor(p)
			tc.mutate(sc)
			err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes, Static: sc})
			if err == nil {
				t.Fatalf("tamper %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("tamper %q: error %q does not mention %q", tc.name, err, tc.wantErr)
			}
		})
	}
}
