package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/spec"
)

// runSpecSim executes a batch of independent kernels with worker 0
// slowed far past the speculation slack (the model does not know about
// the slowdown), guaranteeing at least one replica win and hence at
// least one cancelled span.
func runSpecSim(t *testing.T) (*runtime.Graph, *sim.Result, *fault.Plan) {
	t.Helper()
	g := runtime.NewGraph()
	for i := 0; i < 10; i++ {
		g.Submit(&runtime.Task{Kind: "work", Cost: []float64{0.01, 0.001}})
	}
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 1e3, Factor: 16},
		},
		Speculation: spec.Policy{Enabled: true, SlackFactor: 1.5},
	}
	res, err := sim.Run(testMachine(t), g, core.New(core.Defaults()), sim.Options{
		Seed: 1, CollectMemEvents: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.ReplicaWins == 0 || res.Trace.CancelledCount() == 0 {
		t.Fatalf("speculation run produced no replica win (stats %+v); the scenario is mis-tuned", res.Spec)
	}
	return g, res, plan
}

func specOpts(res *sim.Result, plan *fault.Plan) Options {
	return Options{
		OverflowBytes: res.OverflowBytes,
		Spec:          &SpecCheck{MaxReplicas: plan.SpecPolicy().ReplicaCap()},
	}
}

func TestSpecCheckAcceptsSpeculativeRun(t *testing.T) {
	g, res, plan := runSpecSim(t)
	if err := Check(g, res.Trace, specOpts(res, plan)); err != nil {
		t.Fatalf("valid speculative run rejected: %v", err)
	}
}

// Without a SpecCheck the oracle keeps the strict exactly-once rule:
// any cancelled span in the trace is itself a violation.
func TestCancelledSpanRejectedWithoutSpecCheck(t *testing.T) {
	g, res, _ := runSpecSim(t)
	err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes})
	if err == nil || !strings.Contains(err.Error(), "speculation checking is not enabled") {
		t.Fatalf("err = %v, want cancelled-attempt violation", err)
	}
}

// A span marked both failed and cancelled is malformed regardless of
// which checks are enabled.
func TestSpecCheckRejectsFailedAndCancelled(t *testing.T) {
	g, res, plan := runSpecSim(t)
	for i := range res.Trace.Spans {
		if res.Trace.Spans[i].Cancelled {
			res.Trace.Spans[i].Failed = true
			break
		}
	}
	err := Check(g, res.Trace, specOpts(res, plan))
	if err == nil || !strings.Contains(err.Error(), "both failed and cancelled") {
		t.Fatalf("err = %v, want malformed-span violation", err)
	}
}

// Un-cancelling a loser forges a second effective completion of its
// task: exactly-once-effective must catch it.
func TestSpecCheckRejectsDoubleSuccess(t *testing.T) {
	g, res, plan := runSpecSim(t)
	for i := range res.Trace.Spans {
		if res.Trace.Spans[i].Cancelled {
			res.Trace.Spans[i].Cancelled = false
			break
		}
	}
	err := Check(g, res.Trace, specOpts(res, plan))
	if err == nil || !strings.Contains(err.Error(), "executed successfully twice") {
		t.Fatalf("err = %v, want double-execution violation", err)
	}
}

// Forging extra cancelled attempts of one task must trip the replica
// budget.
func TestSpecCheckReplicaBudget(t *testing.T) {
	g, res, plan := runSpecSim(t)
	var cancelled int
	for i := range res.Trace.Spans {
		if res.Trace.Spans[i].Cancelled {
			cancelled = i
			break
		}
	}
	for i := 0; i < 2; i++ {
		res.Trace.Spans = append(res.Trace.Spans, res.Trace.Spans[cancelled])
	}
	err := Check(g, res.Trace, specOpts(res, plan))
	if err == nil || !strings.Contains(err.Error(), "replica budget") {
		t.Fatalf("err = %v, want replica-budget violation", err)
	}
}

// A cancelled span ending before its task's effective completion means
// the engine discarded an attempt that finished first — forged
// first-success-wins arbitration.
func TestSpecCheckFirstSuccessWins(t *testing.T) {
	g, res, plan := runSpecSim(t)
	loser := -1
	for i := range res.Trace.Spans {
		if res.Trace.Spans[i].Cancelled {
			loser = i
			break
		}
	}
	if loser < 0 {
		t.Fatal("no cancelled span")
	}
	s := &res.Trace.Spans[loser]
	s.End = s.Start // degenerate: certainly before the effective end
	s.Wait = 0
	err := Check(g, res.Trace, specOpts(res, plan))
	if err == nil || !strings.Contains(err.Error(), "first-success-wins") {
		t.Fatalf("err = %v, want first-success-wins violation", err)
	}
}
