// Package oracle is the execution-validity authority of the repository:
// given an application graph and the trace of a finished run (simulated
// or threaded), it asserts that the run was *correct* irrespective of
// the scheduling policy that produced it.
//
// The invariants, in the spirit of the validity oracles of
// simulator-based scheduling frameworks (HeSP, STOMP):
//
//   - every submitted task executed exactly once, was claimed, and its
//     execution record matches its trace span;
//   - every task ran on an architecture for which it has a finite cost;
//   - start times respect every inferred dependency (a task never
//     starts before all predecessors ended);
//   - tasks sharing a Commute-mode handle never overlap in kernel time
//     (the engines' execution-time mutual exclusion);
//   - one worker never runs two kernels at once;
//   - the reported makespan equals the latest span end;
//   - when the trace carries memory events (simulator runs with
//     CollectMemEvents), a full coherence replay: every read observes
//     the last writer's version of each handle, replica allocations and
//     frees balance, and node capacities are never exceeded beyond the
//     overflow the engine itself reported.
//
// The oracle is pure observation: it never mutates the graph or trace.
package oracle

import (
	"errors"
	"fmt"
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// Options tunes a conformance check.
type Options struct {
	// Eps is the tolerance for timestamp comparisons. The discrete-event
	// simulator is exact (0 works); wall-clock engines may pass a small
	// slack for clock granularity.
	Eps float64
	// OverflowBytes is the per-node memory overflow the simulator itself
	// reported (sim.Result.OverflowBytes). The capacity replay tolerates
	// overshoot only on nodes with a non-zero reported overflow; nil
	// means any overshoot is a violation.
	OverflowBytes []int64
}

// maxViolations bounds the error report; past this the run is broken
// enough that more detail does not help.
const maxViolations = 25

type checker struct {
	g    *runtime.Graph
	tr   *trace.Trace
	m    *platform.Machine
	opts Options

	spanOf map[int64]*trace.Span
	errs   []error
}

func (c *checker) failf(format string, args ...any) {
	if len(c.errs) < maxViolations {
		c.errs = append(c.errs, fmt.Errorf(format, args...))
	} else if len(c.errs) == maxViolations {
		c.errs = append(c.errs, errors.New("oracle: further violations suppressed"))
	}
}

// Check validates the finished run recorded in tr against the graph it
// executed. It returns nil when every invariant holds, or an error
// joining every violation found.
func Check(g *runtime.Graph, tr *trace.Trace, opts Options) error {
	if tr == nil || tr.Machine == nil {
		return errors.New("oracle: trace without machine")
	}
	c := &checker{g: g, tr: tr, m: tr.Machine, opts: opts}
	c.checkSpans()
	if len(c.errs) == 0 {
		// The remaining invariants read spans by task; they only make
		// sense once every task has exactly one well-formed span.
		c.checkDependencies()
		c.checkCommuteExclusivity()
		c.checkWorkerSerialization()
		c.checkMakespan()
		if len(tr.MemEvents) > 0 {
			c.replayMemory()
		}
	}
	return errors.Join(c.errs...)
}

// checkSpans verifies the exactly-once property and the per-span
// execution records.
func (c *checker) checkSpans() {
	c.spanOf = make(map[int64]*trace.Span, len(c.tr.Spans))
	taskByID := make(map[int64]*runtime.Task, len(c.g.Tasks))
	for _, t := range c.g.Tasks {
		taskByID[t.ID] = t
	}
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		t, known := taskByID[s.TaskID]
		if !known {
			c.failf("oracle: span for unknown task %d", s.TaskID)
			continue
		}
		if prev, dup := c.spanOf[s.TaskID]; dup {
			c.failf("oracle: task %d executed twice (spans on workers %d and %d)", s.TaskID, prev.Worker, s.Worker)
			continue
		}
		c.spanOf[s.TaskID] = s
		if s.Worker < 0 || int(s.Worker) >= len(c.m.Units) {
			c.failf("oracle: task %d ran on unknown worker %d", s.TaskID, s.Worker)
			continue
		}
		if s.End < s.Start-c.opts.Eps || s.Start < -c.opts.Eps {
			c.failf("oracle: task %d has inverted span [%g, %g]", s.TaskID, s.Start, s.End)
		}
		if s.Wait < 0 || s.Wait > s.End-s.Start+c.opts.Eps {
			c.failf("oracle: task %d has wait %g outside its span [%g, %g]", s.TaskID, s.Wait, s.Start, s.End)
		}
		arch := c.m.Units[s.Worker].Arch
		if cost, ok := t.BaseCost(arch); !ok {
			c.failf("oracle: task %d (%s) ran on arch %s without a finite cost", t.ID, t.Kind, c.m.ArchName(arch))
		} else if cost <= 0 {
			c.failf("oracle: task %d (%s) has non-positive cost %g on arch %s", t.ID, t.Kind, cost, c.m.ArchName(arch))
		}
		if !t.Claimed() {
			c.failf("oracle: task %d executed without being claimed", t.ID)
		}
		if t.RanOn != s.Worker {
			c.failf("oracle: task %d records worker %d but its span is on worker %d", t.ID, t.RanOn, s.Worker)
		}
		if diff(t.StartAt, s.Start) > c.opts.Eps || diff(t.EndAt, s.End) > c.opts.Eps {
			c.failf("oracle: task %d execution record [%g, %g] disagrees with span [%g, %g]",
				t.ID, t.StartAt, t.EndAt, s.Start, s.End)
		}
	}
	for _, t := range c.g.Tasks {
		if _, ok := c.spanOf[t.ID]; !ok {
			c.failf("oracle: task %d (%s) never executed", t.ID, t.Kind)
		}
	}
}

// checkDependencies verifies that no task started before every
// predecessor ended.
func (c *checker) checkDependencies() {
	for _, t := range c.g.Tasks {
		s := c.spanOf[t.ID]
		for _, p := range c.g.Preds(t) {
			ps := c.spanOf[p.ID]
			if ps.End > s.Start+c.opts.Eps {
				c.failf("oracle: dependency violated: task %d ends at %g after successor %d starts at %g",
					p.ID, ps.End, t.ID, s.Start)
			}
		}
	}
}

// kernelStart is the instant the kernel actually began computing: the
// span start plus the transfer wait.
func kernelStart(s *trace.Span) float64 { return s.Start + s.Wait }

// checkCommuteExclusivity verifies that commutative updaters of one
// handle never overlapped in kernel time: they carry no dependency
// edges among themselves, so exclusivity is purely the engines'
// execution-time locking.
func (c *checker) checkCommuteExclusivity() {
	byHandle := make(map[int64][]*trace.Span)
	for _, t := range c.g.Tasks {
		for _, h := range t.CommuteHandles(nil) {
			byHandle[h.ID] = append(byHandle[h.ID], c.spanOf[t.ID])
		}
	}
	for h, spans := range byHandle {
		sort.Slice(spans, func(i, j int) bool { return kernelStart(spans[i]) < kernelStart(spans[j]) })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if prev.End > kernelStart(cur)+c.opts.Eps {
				c.failf("oracle: commute exclusivity violated on handle %d: task %d computes until %g, task %d starts at %g",
					h, prev.TaskID, prev.End, cur.TaskID, kernelStart(cur))
			}
		}
	}
}

// checkWorkerSerialization verifies that each worker ran one task at a
// time (full spans, including transfer wait, must not interleave).
func (c *checker) checkWorkerSerialization() {
	byWorker := make(map[platform.UnitID][]*trace.Span)
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
	}
	for w, spans := range byWorker {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if prev.End > cur.Start+c.opts.Eps {
				c.failf("oracle: worker %d overlap: task %d runs [%g, %g], task %d starts at %g",
					w, prev.TaskID, prev.Start, prev.End, cur.TaskID, cur.Start)
			}
		}
	}
}

// checkMakespan verifies the reported makespan is exactly the latest
// span end.
func (c *checker) checkMakespan() {
	var last float64
	for i := range c.tr.Spans {
		if e := c.tr.Spans[i].End; e > last {
			last = e
		}
	}
	if diff(last, c.tr.Makespan) > c.opts.Eps {
		c.failf("oracle: makespan %g does not equal latest span end %g", c.tr.Makespan, last)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
