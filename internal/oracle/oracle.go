// Package oracle is the execution-validity authority of the repository:
// given an application graph and the trace of a finished run (simulated
// or threaded), it asserts that the run was *correct* irrespective of
// the scheduling policy that produced it.
//
// The invariants, in the spirit of the validity oracles of
// simulator-based scheduling frameworks (HeSP, STOMP):
//
//   - every submitted task executed exactly once, was claimed, and its
//     execution record matches its trace span;
//   - every task ran on an architecture for which it has a finite cost;
//   - start times respect every inferred dependency (a task never
//     starts before all predecessors ended);
//   - tasks sharing a Commute-mode handle never overlap in kernel time
//     (the engines' execution-time mutual exclusion);
//   - one worker never runs two kernels at once;
//   - the reported makespan equals the latest span end;
//   - when the trace carries memory events (simulator runs with
//     CollectMemEvents), a full coherence replay: every read observes
//     the last writer's version of each handle, replica allocations and
//     frees balance, and node capacities are never exceeded beyond the
//     overflow the engine itself reported;
//   - on multi-node cluster machines (platform.NewCluster), inter-node
//     transfer replay: a value read on a different node than it was
//     produced on must have traversed the interconnect as a recorded
//     transfer, and no cross-node transfer beats its link time.
//
// The oracle is pure observation: it never mutates the graph or trace.
package oracle

import (
	"errors"
	"fmt"
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// Options tunes a conformance check.
type Options struct {
	// Eps is the tolerance for timestamp comparisons. The discrete-event
	// simulator is exact (0 works); wall-clock engines may pass a small
	// slack for clock granularity.
	Eps float64
	// OverflowBytes is the per-node memory overflow the simulator itself
	// reported (sim.Result.OverflowBytes). The capacity replay tolerates
	// overshoot only on nodes with a non-zero reported overflow; nil
	// means any overshoot is a violation.
	OverflowBytes []int64
	// Faults switches the oracle from exactly-once to
	// exactly-once-effective validation for fault-injected runs. Nil
	// (the default) keeps the strict rule: any failed span in the trace
	// is a violation.
	Faults *FaultCheck
	// Spec enables validation of speculative straggler mitigation:
	// cancelled attempts are allowed (and checked), every task still has
	// exactly one effective completion, and a cancelled attempt never
	// supersedes it. Nil keeps the strict rule: any cancelled span is a
	// violation.
	Spec *SpecCheck
	// Stream enables validation of streaming (online-ingestion) runs:
	// arrival gating, per-tenant exactly-once, the admission-control
	// in-flight bound, and the no-cross-tenant-starvation replay. Nil
	// skips the streaming invariants (batch runs).
	Stream *StreamCheck
	// Static enables validation of static-plan replay runs: every
	// effective attempt on its planned worker in plan order unless a
	// justified repair event covers the task (static.go). Nil skips it
	// (dynamic runs have no plan to conform to).
	Static *StaticCheck
}

// FaultCheck configures exactly-once-effective validation: failed
// attempts are allowed, every task must still have exactly one
// successful execution, and dependencies are honored by every attempt
// (a retry may only have started after all predecessors' successful
// completions).
type FaultCheck struct {
	// MaxRetries bounds the failed attempts per task (the fault plan's
	// retry cap); more is a violation.
	MaxRetries int
	// Kills are the kill events the engine reports having applied
	// (Result.Faults.AppliedKills). No successful span on a killed
	// worker may end after the kill.
	Kills []runtime.AppliedKill
	// Strict additionally requires that nothing at all runs on a
	// killed worker past the kill instant: failed attempts end exactly
	// at it and no span starts after it. The simulator guarantees this;
	// the threaded engine's completion-discard semantics cannot (a
	// kernel goroutine finishes its function after the kill and only
	// then learns its completion is discarded), so leave Strict false
	// for threaded runs.
	Strict bool
}

// SpecCheck configures validation of speculation runs. A trace may then
// carry Cancelled spans — attempts beaten by first-success-wins
// arbitration — which participate in every structural invariant
// (dependencies, commute exclusivity, worker serialization) but never
// count as the task's execution: the effective span alone carries the
// published completion, and every cancelled attempt of a task must end
// at or after it (a loser is only ever cancelled once a winner finished;
// a cancelled span ending earlier means the engine discarded a
// completion that should have won).
type SpecCheck struct {
	// MaxReplicas bounds the cancelled attempts per task (the
	// speculation policy's per-task replica cap): a task gains at most
	// MaxReplicas extra attempts, exactly one attempt wins, so more than
	// MaxReplicas cancellations means the budget was violated. 0 means
	// unbounded.
	MaxReplicas int
}

// maxViolations bounds the error report; past this the run is broken
// enough that more detail does not help.
const maxViolations = 25

type checker struct {
	g    *runtime.Graph
	tr   *trace.Trace
	m    *platform.Machine
	opts Options

	// spanOf maps each task to its successful span; failed attempts
	// (fault mode only) are collected per task in attemptsOf, cancelled
	// speculation losers (spec mode only) in cancelledOf.
	spanOf      map[int64]*trace.Span
	attemptsOf  map[int64][]*trace.Span
	cancelledOf map[int64][]*trace.Span
	errs        []error
}

func (c *checker) failf(format string, args ...any) {
	if len(c.errs) < maxViolations {
		c.errs = append(c.errs, fmt.Errorf(format, args...))
	} else if len(c.errs) == maxViolations {
		c.errs = append(c.errs, errors.New("oracle: further violations suppressed"))
	}
}

// Check validates the finished run recorded in tr against the graph it
// executed. It returns nil when every invariant holds, or an error
// joining every violation found.
func Check(g *runtime.Graph, tr *trace.Trace, opts Options) error {
	if tr == nil || tr.Machine == nil {
		return errors.New("oracle: trace without machine")
	}
	c := &checker{g: g, tr: tr, m: tr.Machine, opts: opts}
	c.checkSpans()
	if len(c.errs) == 0 {
		// The remaining invariants read spans by task; they only make
		// sense once every task has exactly one well-formed successful
		// span.
		c.checkDependencies()
		c.checkCommuteExclusivity()
		c.checkWorkerSerialization()
		c.checkMakespan()
		if opts.Faults != nil {
			c.checkFaults()
		}
		if opts.Spec != nil {
			c.checkSpecs()
		}
		if opts.Stream != nil {
			c.checkStream()
		}
		if opts.Static != nil {
			c.checkStatic()
		}
		if len(tr.MemEvents) > 0 {
			c.replayMemory()
			if c.m.NumNodes() > 1 {
				// Multi-node run: additionally require that every value
				// crossing nodes traversed an interconnect transfer, and
				// that no transfer beat its link time (cluster.go).
				c.checkCluster()
			}
		}
	}
	return errors.Join(c.errs...)
}

// checkSpans verifies the exactly-once(-effective) property and the
// per-span execution records. Failed attempts are tolerated only in
// fault mode; the execution record (claim, worker, timestamps) is
// matched against the successful span alone, since a retry overwrote
// the failed attempts' records.
func (c *checker) checkSpans() {
	c.spanOf = make(map[int64]*trace.Span, len(c.tr.Spans))
	c.attemptsOf = make(map[int64][]*trace.Span)
	c.cancelledOf = make(map[int64][]*trace.Span)
	taskByID := make(map[int64]*runtime.Task, len(c.g.Tasks))
	for _, t := range c.g.Tasks {
		taskByID[t.ID] = t
	}
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		t, known := taskByID[s.TaskID]
		if !known {
			c.failf("oracle: span for unknown task %d", s.TaskID)
			continue
		}
		if s.Worker < 0 || int(s.Worker) >= len(c.m.Units) {
			c.failf("oracle: task %d ran on unknown worker %d", s.TaskID, s.Worker)
			continue
		}
		if s.End < s.Start-c.opts.Eps || s.Start < -c.opts.Eps {
			c.failf("oracle: task %d has inverted span [%g, %g]", s.TaskID, s.Start, s.End)
		}
		if s.Wait < 0 || s.Wait > s.End-s.Start+c.opts.Eps {
			c.failf("oracle: task %d has wait %g outside its span [%g, %g]", s.TaskID, s.Wait, s.Start, s.End)
		}
		arch := c.m.Units[s.Worker].Arch
		if cost, ok := t.BaseCost(arch); !ok {
			c.failf("oracle: task %d (%s) ran on arch %s without a finite cost", t.ID, t.Kind, c.m.ArchName(arch))
		} else if cost <= 0 {
			c.failf("oracle: task %d (%s) has non-positive cost %g on arch %s", t.ID, t.Kind, cost, c.m.ArchName(arch))
		}
		if s.Failed && s.Cancelled {
			c.failf("oracle: task %d has a span marked both failed and cancelled", s.TaskID)
			continue
		}
		if s.Failed {
			if c.opts.Faults == nil {
				c.failf("oracle: task %d has a failed attempt but fault checking is not enabled", s.TaskID)
				continue
			}
			c.attemptsOf[s.TaskID] = append(c.attemptsOf[s.TaskID], s)
			continue
		}
		if s.Cancelled {
			if c.opts.Spec == nil {
				c.failf("oracle: task %d has a cancelled attempt but speculation checking is not enabled", s.TaskID)
				continue
			}
			c.cancelledOf[s.TaskID] = append(c.cancelledOf[s.TaskID], s)
			continue
		}
		if prev, dup := c.spanOf[s.TaskID]; dup {
			c.failf("oracle: task %d executed successfully twice (spans on workers %d and %d)", s.TaskID, prev.Worker, s.Worker)
			continue
		}
		c.spanOf[s.TaskID] = s
		if !t.Claimed() {
			c.failf("oracle: task %d executed without being claimed", t.ID)
		}
		if t.RanOn != s.Worker {
			c.failf("oracle: task %d records worker %d but its span is on worker %d", t.ID, t.RanOn, s.Worker)
		}
		if diff(t.StartAt, s.Start) > c.opts.Eps || diff(t.EndAt, s.End) > c.opts.Eps {
			c.failf("oracle: task %d execution record [%g, %g] disagrees with span [%g, %g]",
				t.ID, t.StartAt, t.EndAt, s.Start, s.End)
		}
	}
	for _, t := range c.g.Tasks {
		if _, ok := c.spanOf[t.ID]; !ok {
			c.failf("oracle: task %d (%s) never executed successfully", t.ID, t.Kind)
		}
	}
}

// checkDependencies verifies that no task started before every
// predecessor's successful completion — for every attempt, including
// failed and cancelled ones: an engine may only hand a task (or its
// retry or replica) to a worker once its dependencies are effectively
// done.
func (c *checker) checkDependencies() {
	for _, t := range c.g.Tasks {
		spans := append(append(c.attemptsOf[t.ID], c.cancelledOf[t.ID]...), c.spanOf[t.ID])
		for _, p := range c.g.Preds(t) {
			ps := c.spanOf[p.ID]
			for _, s := range spans {
				if ps.End > s.Start+c.opts.Eps {
					c.failf("oracle: dependency violated: task %d ends at %g after successor %d starts at %g",
						p.ID, ps.End, t.ID, s.Start)
				}
			}
		}
	}
}

// kernelStart is the instant the kernel actually began computing: the
// span start plus the transfer wait.
func kernelStart(s *trace.Span) float64 { return s.Start + s.Wait }

// checkCommuteExclusivity verifies that commutative updaters of one
// handle never overlapped in kernel time: they carry no dependency
// edges among themselves, so exclusivity is purely the engines'
// execution-time locking.
func (c *checker) checkCommuteExclusivity() {
	byHandle := make(map[int64][]*trace.Span)
	for _, t := range c.g.Tasks {
		for _, h := range t.CommuteHandles(nil) {
			byHandle[h.ID] = append(byHandle[h.ID], c.spanOf[t.ID])
			// Failed and cancelled attempts held the commute locks from
			// kernel start to the abort/cancellation, so they
			// participate in exclusivity too.
			byHandle[h.ID] = append(byHandle[h.ID], c.attemptsOf[t.ID]...)
			byHandle[h.ID] = append(byHandle[h.ID], c.cancelledOf[t.ID]...)
		}
	}
	for h, spans := range byHandle {
		sort.Slice(spans, func(i, j int) bool { return kernelStart(spans[i]) < kernelStart(spans[j]) })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if prev.End > kernelStart(cur)+c.opts.Eps {
				c.failf("oracle: commute exclusivity violated on handle %d: task %d computes until %g, task %d starts at %g",
					h, prev.TaskID, prev.End, cur.TaskID, kernelStart(cur))
			}
		}
	}
}

// checkWorkerSerialization verifies that each worker ran one task at a
// time (full spans, including transfer wait, must not interleave).
func (c *checker) checkWorkerSerialization() {
	byWorker := make(map[platform.UnitID][]*trace.Span)
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
	}
	for w, spans := range byWorker {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if prev.End > cur.Start+c.opts.Eps {
				c.failf("oracle: worker %d overlap: task %d runs [%g, %g], task %d starts at %g",
					w, prev.TaskID, prev.Start, prev.End, cur.TaskID, cur.Start)
			}
		}
	}
}

// checkMakespan verifies the reported makespan is exactly the latest
// effective span end. Failed attempts do not contribute (the retry that
// supersedes one always ends later); neither do cancelled ones in the
// simulator, where a loser's span is cut at the winner's completion —
// the threaded engine's losers run to the end of their kernel, so there
// a cancelled span may outlast the makespan and the engines agree only
// on the effective reading.
func (c *checker) checkMakespan() {
	var last float64
	for i := range c.tr.Spans {
		if s := &c.tr.Spans[i]; !s.Failed && !s.Cancelled && s.End > last {
			last = s.End
		}
	}
	if diff(last, c.tr.Makespan) > c.opts.Eps {
		c.failf("oracle: makespan %g does not equal latest span end %g", c.tr.Makespan, last)
	}
}

// checkFaults validates the exactly-once-effective extras: the retry
// budget and the applied kills.
func (c *checker) checkFaults() {
	fc := c.opts.Faults
	if fc.MaxRetries > 0 {
		for id, attempts := range c.attemptsOf {
			if len(attempts) > fc.MaxRetries {
				c.failf("oracle: task %d failed %d times, over the %d retry budget", id, len(attempts), fc.MaxRetries)
			}
		}
	}
	// First kill instant per worker (a worker dies once, but be robust
	// to plans listing several).
	killAt := make(map[platform.UnitID]float64, len(fc.Kills))
	for _, k := range fc.Kills {
		if at, ok := killAt[k.Unit]; !ok || k.At < at {
			killAt[k.Unit] = k.At
		}
	}
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		at, killed := killAt[s.Worker]
		if !killed {
			continue
		}
		if !s.Failed && !s.Cancelled && s.End > at+c.opts.Eps {
			c.failf("oracle: task %d completed on worker %d at %g, after its kill at %g",
				s.TaskID, s.Worker, s.End, at)
		}
		if fc.Strict {
			if s.Start > at+c.opts.Eps {
				c.failf("oracle: task %d started on worker %d at %g, after its kill at %g",
					s.TaskID, s.Worker, s.Start, at)
			}
			if s.End > at+c.opts.Eps && !s.Failed {
				continue // already reported above
			}
			if s.Failed && s.End > at+c.opts.Eps {
				c.failf("oracle: failed attempt of task %d on worker %d ends at %g, after its kill at %g",
					s.TaskID, s.Worker, s.End, at)
			}
		}
	}
}

// checkSpecs validates the speculation extras: the per-task replica
// budget, and first-success-wins ordering — a cancelled attempt may
// only end at or after the task's effective completion, because engines
// cancel losers exactly when a winner finishes (simulator) or discard
// their later completions (threaded). A cancelled span ending strictly
// earlier means an attempt that finished first was discarded anyway,
// i.e. the arbitration was forged.
func (c *checker) checkSpecs() {
	sc := c.opts.Spec
	for id, cs := range c.cancelledOf {
		if sc.MaxReplicas > 0 && len(cs) > sc.MaxReplicas {
			c.failf("oracle: task %d has %d cancelled attempts, over the %d replica budget",
				id, len(cs), sc.MaxReplicas)
		}
		eff := c.spanOf[id]
		for _, s := range cs {
			if s.End < eff.End-c.opts.Eps {
				c.failf("oracle: cancelled attempt of task %d on worker %d ends at %g, before the effective completion at %g (first-success-wins violated)",
					id, s.Worker, s.End, eff.End)
			}
		}
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
