package oracle

import (
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// StaticCheck configures validation of static-plan replay runs (the
// heft family): every effective attempt must have run on its planned
// worker, in the planned per-worker order, unless a logged repair event
// covers the task — and every repair event must itself be justified,
// either by an applied kill of its worker or by a measured-slack
// violation of its trigger task. Forged repairs (a diversion the
// environment never warranted) and silent deviations (a task running
// off-plan with no covering repair) are both violations.
type StaticCheck struct {
	// Assignment[t] is the planned worker of task t; Order[w] the
	// planned task order of worker w; Finish[t] the model-predicted
	// finish the slack rule measures drift against; Makespan the
	// planned makespan that scales the slack budget.
	Assignment []platform.UnitID
	Order      [][]int64
	Finish     []float64
	Makespan   float64
	// SlackFactor is the hybrid policy's drift budget: a slack repair is
	// justified only if its trigger task's effective finish exceeds
	// Finish[trigger] + (SlackFactor−1) × Makespan.
	SlackFactor float64
	// Repairs are the deviation repairs the scheduler logged.
	Repairs []StaticRepair
	// Kills are the kill events the engine reports having applied;
	// kill-reason repairs must name a worker that actually died.
	Kills []runtime.AppliedKill
}

// StaticRepair is one logged deviation repair: at time At the scheduler
// re-routed Tasks (all planned on Worker) to its dynamic fallback.
// Reason is "kill" or "slack"; slack repairs name the Trigger task
// whose late finish fired the rule, kill repairs set it to -1.
type StaticRepair struct {
	At      float64
	Worker  platform.UnitID
	Reason  string
	Trigger int64
	Tasks   []int64
}

// checkStatic validates the static-replay invariants. It runs after
// checkSpans, so every task has exactly one effective span.
func (c *checker) checkStatic() {
	sc := c.opts.Static
	n := len(c.g.Tasks)
	if len(sc.Assignment) != n || len(sc.Finish) != n {
		c.failf("oracle: static plan covers %d tasks, graph has %d", len(sc.Assignment), n)
		return
	}

	// The plan itself must be well-formed: every task appears exactly
	// once, in the order list of exactly its assigned worker.
	slot := make(map[int64]int, n)
	for w, ord := range sc.Order {
		for i, id := range ord {
			if id < 0 || id >= int64(n) {
				c.failf("oracle: static plan orders unknown task %d on worker %d", id, w)
				continue
			}
			if _, dup := slot[id]; dup {
				c.failf("oracle: static plan lists task %d twice", id)
				continue
			}
			if sc.Assignment[id] != platform.UnitID(w) {
				c.failf("oracle: static plan orders task %d on worker %d but assigns it to %d", id, w, sc.Assignment[id])
			}
			slot[id] = i
		}
	}
	if len(slot) != n {
		c.failf("oracle: static plan orders %d tasks, graph has %d", len(slot), n)
	}

	// First kill instant per worker, for repair justification.
	killAt := make(map[platform.UnitID]float64, len(sc.Kills))
	for _, k := range sc.Kills {
		if at, ok := killAt[k.Unit]; !ok || k.At < at {
			killAt[k.Unit] = k.At
		}
	}

	// Each repair must be justified, and each task diverted at most
	// once; divertedAt records when a task's deviation became licensed.
	divertedAt := make(map[int64]float64, 8)
	for ri, r := range sc.Repairs {
		switch r.Reason {
		case "kill":
			at, killed := killAt[r.Worker]
			if !killed {
				c.failf("oracle: repair %d claims worker %d was killed, but no kill was applied there", ri, r.Worker)
			} else if at > r.At+c.opts.Eps {
				c.failf("oracle: repair %d at %g predates worker %d's kill at %g", ri, r.At, r.Worker, at)
			}
		case "slack":
			sf := sc.SlackFactor
			if sf <= 1 {
				c.failf("oracle: repair %d is slack-justified but the check carries slack factor %g", ri, sf)
				break
			}
			ts := c.spanOf[r.Trigger]
			if ts == nil || r.Trigger < 0 || r.Trigger >= int64(n) {
				c.failf("oracle: repair %d names unknown trigger task %d", ri, r.Trigger)
				break
			}
			budget := sc.Finish[r.Trigger] + (sf-1)*sc.Makespan
			// Eps forgives clock-granularity jitter around the boundary:
			// only a trigger clearly inside its budget forges the repair.
			if ts.End < budget-c.opts.Eps {
				c.failf("oracle: repair %d claims slack on task %d, but it finished at %g within the %g budget",
					ri, r.Trigger, ts.End, budget)
			}
		default:
			c.failf("oracle: repair %d has unknown reason %q", ri, r.Reason)
		}
		if len(r.Tasks) == 0 {
			c.failf("oracle: repair %d diverts no tasks", ri)
		}
		for _, id := range r.Tasks {
			if id < 0 || id >= int64(n) {
				c.failf("oracle: repair %d diverts unknown task %d", ri, id)
				continue
			}
			if sc.Assignment[id] != r.Worker {
				c.failf("oracle: repair %d on worker %d diverts task %d planned on worker %d",
					ri, r.Worker, id, sc.Assignment[id])
			}
			if _, dup := divertedAt[id]; dup {
				c.failf("oracle: task %d diverted by two repair events", id)
				continue
			}
			divertedAt[id] = r.At
		}
	}

	// Placement: every effective span on its planned worker, unless a
	// repair covers the task — and then the effective run must postdate
	// the repair (a span already under way when the repair fired cannot
	// have been caused by it; kill-diverted in-flight attempts re-run,
	// so their effective span starts at or after the kill).
	for _, t := range c.g.Tasks {
		s := c.spanOf[t.ID]
		at, diverted := divertedAt[t.ID]
		if !diverted {
			if s.Worker != sc.Assignment[t.ID] {
				c.failf("oracle: task %d ran on worker %d, plan assigns worker %d and no repair covers it",
					t.ID, s.Worker, sc.Assignment[t.ID])
			}
			continue
		}
		if s.Start < at-c.opts.Eps {
			c.failf("oracle: diverted task %d started at %g, before its repair at %g", t.ID, s.Start, at)
		}
	}

	// Order: per worker, the effective spans of the non-diverted tasks
	// planned there must run in plan order. Spans on one worker are
	// serialized (checked earlier), so walking the plan order and
	// requiring monotone start times is exactly "executed in plan
	// order": a swap makes some later slot start before an earlier one.
	for w, ord := range sc.Order {
		prevID := int64(-1)
		var prevStart float64
		for _, id := range ord {
			if _, d := divertedAt[id]; d {
				continue
			}
			s := c.spanOf[id]
			if s.Worker != platform.UnitID(w) {
				continue // placement violation, already reported
			}
			if prevID >= 0 && s.Start < prevStart-c.opts.Eps {
				c.failf("oracle: worker %d ran task %d before task %d, against plan order", w, id, prevID)
			}
			prevID, prevStart = id, s.Start
		}
	}
}
