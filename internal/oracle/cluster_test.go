package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/distrib"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
	"multiprio/internal/trace"

	_ "multiprio/internal/sched/all"
)

// runClusterSim executes a random DAG on a 2-node cluster through the
// two-level distributor, with the full memory-event stream collected so
// Check runs the inter-node transfer replay.
func runClusterSim(t *testing.T) (*runtime.Graph, *sim.Result) {
	t.Helper()
	m, err := platform.UniformCluster("oc2", 2, func(i int) (*platform.Machine, error) {
		name := []string{"na", "nb"}[i]
		return platform.NewHeteroNode(name, 4, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	}, 2e9, 2e-5)
	if err != nil {
		t.Fatal(err)
	}
	g := randdag.Build(randdag.Params{Layers: 6, Width: 8, CommuteShare: 0.2, Machine: m, Seed: 11})
	sched, err := distrib.New("multiprio", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(m, g, sched, sim.Options{Seed: 7, CollectMemEvents: true})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return g, res
}

func crossIndices(tr *trace.Trace) []int {
	var idx []int
	for i := range tr.Xfers {
		x := &tr.Xfers[i]
		if tr.Machine.NodeOfMem(x.Src) != tr.Machine.NodeOfMem(x.Dst) {
			idx = append(idx, i)
		}
	}
	return idx
}

// TestClusterReplayAccepts pins that an untampered multi-node run —
// which necessarily moves data across the interconnect, since every
// handle is homed on node 0 — satisfies the inter-node replay.
func TestClusterReplayAccepts(t *testing.T) {
	g, res := runClusterSim(t)
	if len(crossIndices(res.Trace)) == 0 {
		t.Fatal("run produced no inter-node transfers; the replay is not being exercised")
	}
	if err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("oracle rejected a valid cluster run: %v", err)
	}
}

// TestClusterReplayCatchesTeleportedData removes every inter-node
// transfer from the trace: the values read across nodes then appear out
// of thin air, which the replay must flag.
func TestClusterReplayCatchesTeleportedData(t *testing.T) {
	g, res := runClusterSim(t)
	tr := res.Trace
	kept := tr.Xfers[:0]
	for i := range tr.Xfers {
		x := tr.Xfers[i]
		if tr.Machine.NodeOfMem(x.Src) == tr.Machine.NodeOfMem(x.Dst) {
			kept = append(kept, x)
		}
	}
	tr.Xfers = kept
	err := Check(g, tr, Options{OverflowBytes: res.OverflowBytes})
	if err == nil {
		t.Fatal("oracle accepted cross-node reads with no interconnect transfers")
	}
	if !strings.Contains(err.Error(), "no interconnect transfer") {
		t.Errorf("error does not name the missing traversal: %v", err)
	}
}

// TestClusterReplayCatchesSuperluminalTransfer shrinks one inter-node
// transfer below its composite link time.
func TestClusterReplayCatchesSuperluminalTransfer(t *testing.T) {
	g, res := runClusterSim(t)
	tr := res.Trace
	idx := crossIndices(tr)
	if len(idx) == 0 {
		t.Fatal("no inter-node transfers to tamper with")
	}
	x := &tr.Xfers[idx[0]]
	x.End = x.Start + (x.End-x.Start)/2
	err := Check(g, tr, Options{OverflowBytes: res.OverflowBytes})
	if err == nil {
		t.Fatal("oracle accepted a transfer faster than its link")
	}
	if !strings.Contains(err.Error(), "below the") {
		t.Errorf("error does not name the link-time bound: %v", err)
	}
}

// TestClusterReplayIgnoresFailedDeliveries marks every inter-node
// transfer failed: a failed transfer drops its payload on arrival, so
// it cannot be the delivery that satisfied a cross-node read.
func TestClusterReplayIgnoresFailedDeliveries(t *testing.T) {
	g, res := runClusterSim(t)
	tr := res.Trace
	for _, i := range crossIndices(tr) {
		tr.Xfers[i].Failed = true
	}
	if err := Check(g, tr, Options{OverflowBytes: res.OverflowBytes}); err == nil {
		t.Fatal("oracle accepted failed transfers as valid deliveries")
	}
}

// TestClusterReplaySkipsSingleNode pins the gate: single-node machines
// never enter the inter-node replay, even with memory events present.
func TestClusterReplaySkipsSingleNode(t *testing.T) {
	m, err := platform.NewHeteroNode("solo", 4, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := randdag.Build(randdag.Params{Layers: 4, Width: 6, Machine: m, Seed: 3})
	sched, err := distrib.New("multiprio", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(m, g, sched, sim.Options{Seed: 7, CollectMemEvents: true})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if err := Check(g, res.Trace, Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("oracle rejected a single-node distrib run: %v", err)
	}
}
