package oracle

import (
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// rkey identifies one replica: a handle on a memory node.
type rkey struct {
	h   int64
	mem platform.MemID
}

// replayEvent is one entry of the merged, seq-ordered event stream:
// a memory event, or a kernel start/end taken from a span.
type replayEvent struct {
	seq  int64
	mem  *trace.MemEvent
	span *trace.Span
	end  bool // span completion rather than kernel start
}

// replayMemory re-executes the trace's replica state machine and checks
// data coherence and capacity. It relies on the engine's sequence
// numbers for an exact linearization of same-instant events.
func (c *checker) replayMemory() {
	events := make([]replayEvent, 0, len(c.tr.MemEvents)+2*len(c.tr.Spans))
	for i := range c.tr.MemEvents {
		e := &c.tr.MemEvents[i]
		if e.Seq <= 0 {
			c.failf("oracle: memory event without sequence number (handle %d on mem %d)", e.Handle, e.Mem)
			return
		}
		events = append(events, replayEvent{seq: e.Seq, mem: e})
	}
	for i := range c.tr.Spans {
		s := &c.tr.Spans[i]
		if s.StartSeq <= 0 || s.EndSeq <= 0 {
			c.failf("oracle: span of task %d lacks sequence numbers; cannot replay coherence", s.TaskID)
			return
		}
		events = append(events,
			replayEvent{seq: s.StartSeq, span: s},
			replayEvent{seq: s.EndSeq, span: s, end: true})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].seq < events[j].seq })
	for i := 1; i < len(events); i++ {
		if events[i].seq == events[i-1].seq {
			c.failf("oracle: duplicate sequence number %d in event stream", events[i].seq)
			return
		}
	}

	taskByID := make(map[int64]*runtime.Task, len(c.g.Tasks))
	for _, t := range c.g.Tasks {
		taskByID[t.ID] = t
	}
	handleByID := make(map[int64]*runtime.DataHandle, len(c.g.Handles))
	allocated := make(map[rkey]bool)
	validVer := make(map[rkey]int64)
	version := make(map[int64]int64)
	used := make([]int64, len(c.m.Mems))
	for _, h := range c.g.Handles {
		handleByID[h.ID] = h
		k := rkey{h.ID, h.Home}
		allocated[k] = true
		validVer[k] = 0
		version[h.ID] = 0
		used[h.Home] += h.Bytes
	}
	capReported := make([]bool, len(c.m.Mems))
	overflowAllowed := func(mem platform.MemID) bool {
		return c.opts.OverflowBytes != nil && int(mem) < len(c.opts.OverflowBytes) && c.opts.OverflowBytes[mem] > 0
	}

	for _, ev := range events {
		switch {
		case ev.mem != nil:
			e := ev.mem
			if _, ok := handleByID[e.Handle]; !ok {
				c.failf("oracle: memory event for unknown handle %d", e.Handle)
				continue
			}
			if e.Mem < 0 || int(e.Mem) >= len(c.m.Mems) {
				c.failf("oracle: memory event on unknown node %d", e.Mem)
				continue
			}
			k := rkey{e.Handle, e.Mem}
			switch e.Kind {
			case trace.MemAlloc:
				if allocated[k] {
					c.failf("oracle: handle %d allocated twice on mem %d at t=%g", e.Handle, e.Mem, e.At)
					continue
				}
				allocated[k] = true
				used[e.Mem] += e.Bytes
				cap := c.m.Mems[e.Mem].CapacityBytes
				if cap > 0 && used[e.Mem] > cap && !overflowAllowed(e.Mem) && !capReported[e.Mem] {
					capReported[e.Mem] = true
					c.failf("oracle: mem %d (%s) holds %d bytes over its %d capacity at t=%g with no reported overflow",
						e.Mem, c.m.Mems[e.Mem].Name, used[e.Mem], cap, e.At)
				}
			case trace.MemValid:
				if !allocated[k] {
					c.failf("oracle: handle %d became valid on mem %d without allocation at t=%g", e.Handle, e.Mem, e.At)
					continue
				}
				cur := version[e.Handle]
				switch e.Version {
				case cur:
					// A copy of the current value arrived.
				case cur + 1:
					// A write completed here.
					version[e.Handle] = e.Version
				default:
					c.failf("oracle: handle %d on mem %d validated with version %d while the handle is at version %d (t=%g)",
						e.Handle, e.Mem, e.Version, cur, e.At)
					continue
				}
				validVer[k] = e.Version
			case trace.MemFree:
				if !allocated[k] {
					c.failf("oracle: handle %d freed on mem %d without allocation at t=%g", e.Handle, e.Mem, e.At)
					continue
				}
				delete(allocated, k)
				delete(validVer, k)
				used[e.Mem] -= e.Bytes
				if used[e.Mem] < 0 {
					c.failf("oracle: mem %d accounting went negative at t=%g", e.Mem, e.At)
				}
			default:
				c.failf("oracle: unknown memory event kind %d", e.Kind)
			}

		case !ev.end:
			// Kernel start: every read access must observe the current
			// version of its handle on the worker's memory node, and
			// every written handle must have space allocated.
			s := ev.span
			t := taskByID[s.TaskID]
			mem := c.m.Units[s.Worker].Mem
			seen := make(map[int64]bool, len(t.Accesses))
			for _, a := range t.Accesses {
				if seen[a.Handle.ID] {
					continue
				}
				seen[a.Handle.ID] = true
				k := rkey{a.Handle.ID, mem}
				if !allocated[k] {
					c.failf("oracle: task %d started on mem %d without space for handle %d (t=%g)",
						t.ID, mem, a.Handle.ID, kernelStart(s))
					continue
				}
			}
			for _, a := range t.Accesses {
				if !a.Mode.IsRead() {
					continue
				}
				k := rkey{a.Handle.ID, mem}
				v, ok := validVer[k]
				if !ok {
					c.failf("oracle: task %d read handle %d on mem %d with no valid replica (t=%g)",
						t.ID, a.Handle.ID, mem, kernelStart(s))
					continue
				}
				if cur := version[a.Handle.ID]; v != cur {
					c.failf("oracle: stale read: task %d observed version %d of handle %d on mem %d, last writer produced %d (t=%g)",
						t.ID, v, a.Handle.ID, mem, cur, kernelStart(s))
				}
			}
		}
	}

	// Every completed write must have bumped its handle's version: the
	// final version equals the number of executed write accesses.
	expected := make(map[int64]int64, len(c.g.Handles))
	for _, t := range c.g.Tasks {
		for _, a := range t.Accesses {
			if a.Mode.IsWrite() {
				expected[a.Handle.ID]++
			}
		}
	}
	for hid, want := range expected {
		if got := version[hid]; got != want {
			c.failf("oracle: handle %d ends at version %d after %d write accesses executed", hid, got, want)
		}
	}
}
