package oracle

import (
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/trace"
)

// checkCluster validates inter-node data movement of a multi-node
// (platform.NewCluster) run. The per-memory coherence replay already
// covers every node's replicas — this adds the two physically-grounded
// cluster invariants:
//
//   - a value can only cross nodes by traversing the interconnect:
//     whenever a task reads a handle whose producing write ran on a
//     different node (or whose initial value is homed on one), a
//     non-failed transfer of that handle must have arrived at the
//     reader's node after the producer finished and before the kernel
//     started;
//   - every cross-node transfer takes at least the composite link time
//     of its (src, dst, bytes) — data never moves faster than the
//     interconnect allows.
//
// Requires the simulator's sequence numbers (it runs only when memory
// events were collected, where replayMemory already enforces them).
func (c *checker) checkCluster() {
	for i := range c.tr.Spans {
		if s := &c.tr.Spans[i]; s.StartSeq <= 0 || s.EndSeq <= 0 {
			return // replayMemory already reported the missing seqs
		}
	}
	eps := c.opts.Eps

	// Link-time lower bound on every cross-node transfer.
	for i := range c.tr.Xfers {
		x := &c.tr.Xfers[i]
		if c.m.NodeOfMem(x.Src) == c.m.NodeOfMem(x.Dst) {
			continue
		}
		// The relative slack absorbs the rounding of End-Start against
		// the link-time formula; it is far below any real shortcut.
		if min := c.m.TransferTime(x.Src, x.Dst, x.Bytes); x.End-x.Start < min-eps-min*1e-9 {
			c.failf("oracle: inter-node transfer of handle %d (%d bytes, mem %d->%d) took %g, below the %g link time",
				x.Handle, x.Bytes, x.Src, x.Dst, x.End-x.Start, min)
		}
	}

	// Successful writer spans per handle, in completion (EndSeq) order —
	// the version order the coherence replay validated.
	writersOf := make(map[int64][]*trace.Span)
	for _, t := range c.g.Tasks {
		s := c.spanOf[t.ID]
		if s == nil {
			continue
		}
		seen := make(map[int64]bool, len(t.Accesses))
		for _, a := range t.Accesses {
			if a.Mode.IsWrite() && !seen[a.Handle.ID] {
				seen[a.Handle.ID] = true
				writersOf[a.Handle.ID] = append(writersOf[a.Handle.ID], s)
			}
		}
	}
	for _, ws := range writersOf {
		sort.Slice(ws, func(i, j int) bool { return ws[i].EndSeq < ws[j].EndSeq })
	}

	// Non-failed arrivals from another node, per (handle, destination
	// node).
	type hnode struct {
		h    int64
		node platform.NodeID
	}
	arrivals := make(map[hnode][]*trace.Transfer)
	for i := range c.tr.Xfers {
		x := &c.tr.Xfers[i]
		if x.Failed {
			continue
		}
		dst := c.m.NodeOfMem(x.Dst)
		if c.m.NodeOfMem(x.Src) == dst {
			continue
		}
		k := hnode{x.Handle, dst}
		arrivals[k] = append(arrivals[k], x)
	}

	homeNode := make(map[int64]platform.NodeID, len(c.g.Handles))
	for _, h := range c.g.Handles {
		homeNode[h.ID] = c.m.NodeOfMem(h.Home)
	}

	for _, t := range c.g.Tasks {
		s := c.spanOf[t.ID]
		if s == nil {
			continue
		}
		readerNode := c.m.NodeOfUnit(s.Worker)
		ks := kernelStart(s)
		checked := make(map[int64]bool, len(t.Accesses))
		for _, a := range t.Accesses {
			if !a.Mode.IsRead() || checked[a.Handle.ID] {
				continue
			}
			checked[a.Handle.ID] = true
			// The value the reader must observe was produced by the last
			// write completed before its kernel start; with no writer yet,
			// it is the initial value at the handle's home.
			producerNode, producerEnd := homeNode[a.Handle.ID], 0.0
			for _, w := range writersOf[a.Handle.ID] {
				if w.EndSeq >= s.StartSeq {
					break
				}
				producerNode = c.m.NodeOfUnit(w.Worker)
				producerEnd = w.End
			}
			if producerNode == readerNode {
				continue
			}
			// Like the link-time bound, the window tolerates float rounding
			// of the engine's arithmetic (observed at the 1e-20 level);
			// the slack is dwarfed by any real transfer or kernel.
			lo := producerEnd - eps - 1e-9*(1+producerEnd)
			hi := ks + eps + 1e-9*(1+ks)
			ok := false
			for _, x := range arrivals[hnode{a.Handle.ID, readerNode}] {
				if x.Start >= lo && x.End <= hi {
					ok = true
					break
				}
			}
			if !ok {
				c.failf("oracle: task %d on node %d read handle %d produced on node %d at t=%g, but no interconnect transfer delivered it before its kernel start at t=%g",
					t.ID, readerNode, a.Handle.ID, producerNode, producerEnd, ks)
			}
		}
	}
}
