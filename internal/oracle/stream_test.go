package oracle

import (
	"strings"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/stream"
)

// runStreamSim executes a batch of independent kernels streamed through
// the Fair wrapper: two tenants, uniform arrivals dense enough that the
// in-flight limit defers some admissions.
func runStreamSim(t *testing.T) (*runtime.Graph, *sim.Result, *stream.Plan, *stream.Fair) {
	t.Helper()
	g := runtime.NewGraph()
	for i := 0; i < 12; i++ {
		g.Submit(&runtime.Task{Kind: "work", Cost: []float64{0.01, 0.001}})
	}
	plan := stream.SplitEven(len(g.Tasks), 2)
	spec := stream.UniformSpec(5, 2, 2000, stream.Uniform, 0)
	if err := spec.Generate(plan); err != nil {
		t.Fatal(err)
	}
	plan.Limits[0], plan.Limits[1] = 2, 2
	fair := stream.NewFair(core.New(core.Defaults()), plan)
	res, err := sim.Run(testMachine(t), g, fair, sim.Options{
		Seed: 1, CollectMemEvents: true, Arrivals: plan.Arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res, plan, fair
}

func streamOpts(res *sim.Result, plan *stream.Plan, fair *stream.Fair) Options {
	return Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: plan, Admissions: fair.AdmissionLog()},
	}
}

func TestStreamCheckAcceptsStreamedRun(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	if err := Check(g, res.Trace, streamOpts(res, plan, fair)); err != nil {
		t.Fatalf("valid streamed run rejected: %v", err)
	}
	// The scenario must actually exercise deferrals, or the starvation
	// replay has nothing to verify.
	if s := fair.Stats(); s.Deferred[0]+s.Deferred[1] == 0 {
		t.Fatal("streamed scenario produced no deferred admission; mis-tuned")
	}
}

// A span moved before its arrival time must be caught by the gating
// check.
func TestStreamCheckCatchesEarlyStart(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	var victim int64 = -1
	for id, at := range plan.Arrivals {
		if at > 0 {
			victim = int64(id)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no task with a positive arrival time")
	}
	for i := range res.Trace.Spans {
		s := &res.Trace.Spans[i]
		if s.TaskID == victim {
			shift := s.End - s.Start
			s.Start, s.End = 0, shift
			g.Tasks[victim].StartAt, g.Tasks[victim].EndAt = 0, shift
		}
	}
	err := Check(g, res.Trace, streamOpts(res, plan, fair))
	if err == nil || !strings.Contains(err.Error(), "before its arrival") {
		t.Fatalf("early start not caught: %v", err)
	}
}

// A forged admission log entry claiming a later admission than the
// task's actual start must be caught.
func TestStreamCheckCatchesStartBeforeAdmission(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	log := fair.AdmissionLog()
	log[0].AdmittedAt = res.Makespan + 1
	log[0].PushedAt = res.Makespan + 1
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: plan, Admissions: log},
	})
	if err == nil || !strings.Contains(err.Error(), "before its admission") {
		t.Fatalf("start-before-admission not caught: %v", err)
	}
}

// An admission log overfilled beyond the tenant limit must be caught by
// the in-flight sweep.
func TestStreamCheckCatchesOverAdmission(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	// Claim every task of tenant 0 was admitted at t=0: with limit 2 and
	// 6 tasks, the sweep must see more than 2 in flight at once.
	log := fair.AdmissionLog()
	for i := range log {
		if log[i].Tenant == 0 {
			log[i].PushedAt, log[i].AdmittedAt = 0, 0
		}
	}
	// Keep arrival/push consistency out of the way.
	arr := append([]float64(nil), plan.Arrivals...)
	tampered := *plan
	tampered.Arrivals = make([]float64, len(arr))
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: &tampered, Admissions: log},
	})
	if err == nil || !strings.Contains(err.Error(), "over its limit") {
		t.Fatalf("over-admission not caught: %v", err)
	}
}

// A delayed admission while the tenant was not saturated is starvation
// and must be caught by the replay.
func TestStreamCheckCatchesStarvation(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	log := fair.AdmissionLog()
	// Find a deferred admission and pretend it was pushed much earlier:
	// the enlarged wait window now overlaps sub-saturated intervals.
	var idx = -1
	for i := range log {
		if log[i].AdmittedAt > log[i].PushedAt {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no deferred admission in the scenario")
	}
	log[idx].PushedAt = 0
	arr := append([]float64(nil), plan.Arrivals...)
	arr[log[idx].Task] = 0
	tampered := *plan
	tampered.Arrivals = arr
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: &tampered, Admissions: log},
	})
	if err == nil || !strings.Contains(err.Error(), "starvation") {
		t.Fatalf("starvation not caught: %v", err)
	}
}

// A tenant census that disagrees with the plan (a task's span deleted)
// must be caught — though the base exactly-once check fires first; the
// census check still guards plans whose TenantOf is inconsistent.
func TestStreamCheckCatchesMissingAdmission(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	log := fair.AdmissionLog()
	log = log[:len(log)-1]
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: plan, Admissions: log},
	})
	if err == nil || !strings.Contains(err.Error(), "without an admission log entry") {
		t.Fatalf("missing admission not caught: %v", err)
	}
}

// An invalid plan (wrong coverage) must be reported rather than
// silently skipped.
func TestStreamCheckRejectsBadPlan(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	bad := *plan
	bad.TenantOf = bad.TenantOf[:len(bad.TenantOf)-1]
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: &bad, Admissions: fair.AdmissionLog()},
	})
	if err == nil || !strings.Contains(err.Error(), "plan invalid") {
		t.Fatalf("bad plan not caught: %v", err)
	}
}

// FIFO inversion within a tenant — a later push admitted earlier — must
// be caught.
func TestStreamCheckCatchesFIFOInversion(t *testing.T) {
	g, res, plan, fair := runStreamSim(t)
	log := fair.AdmissionLog()
	// Pick two same-tenant entries and swap their push times so the one
	// admitted first now appears pushed later.
	var first, second = -1, -1
	for i := range log {
		if log[i].Tenant != 0 {
			continue
		}
		if first < 0 {
			first = i
		} else if log[i].AdmittedAt > log[first].AdmittedAt {
			second = i
			break
		}
	}
	if first < 0 || second < 0 {
		t.Fatal("could not find two orderable admissions for tenant 0")
	}
	log[first].PushedAt = log[second].AdmittedAt + 1
	log[first].AdmittedAt = log[second].AdmittedAt + 1
	err := Check(g, res.Trace, Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &StreamCheck{Plan: plan, Admissions: log},
	})
	if err == nil {
		t.Fatal("FIFO inversion not caught")
	}
}
