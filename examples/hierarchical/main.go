// Hierarchical: the paper's Section VII outlook — a blocked Cholesky
// whose panels expand into fine CPU-sized subgraphs while trailing
// updates stay coarse GPU-sized — with DAG and trace exports for
// inspection (Graphviz DOT, Chrome trace-event JSON).
//
// Run with: go run ./examples/hierarchical [-blocks 6] [-sub 5] [-tile 512] [-out /tmp]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"multiprio/internal/apps/dense"
	"multiprio/internal/experiments"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
)

func main() {
	blocks := flag.Int("blocks", 6, "outer blocks per dimension")
	sub := flag.Int("sub", 5, "fine tiles per block dimension")
	tile := flag.Int("tile", 512, "fine tile size")
	outDir := flag.String("out", os.TempDir(), "directory for DOT/Chrome exports")
	flag.Parse()

	m := platform.IntelV100(platform.Config{})
	p := dense.HierParams{Blocks: *blocks, SubTiles: *sub, TileSize: *tile, Machine: m}
	order := *blocks * *sub * *tile
	fmt.Printf("hierarchical Cholesky: order %d, %d tasks\n",
		order, dense.HierTaskCount(*blocks, *sub))

	for _, name := range []string{"multiprio", "dmdas", "heteroprio"} {
		g := dense.HierarchicalCholesky(p)
		s, err := experiments.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(m, g, s, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fine, coarse := 0, 0
		for _, sp := range res.Trace.Spans {
			if sp.Kind == "gemm" || sp.Kind == "syrk" {
				if m.Units[sp.Worker].Arch == platform.ArchGPU {
					coarse++
				} else {
					fine++
				}
			}
		}
		fmt.Printf("  %-12s makespan %8.4fs   updates on gpu/cpu: %d/%d\n",
			name, res.Makespan, coarse, fine)

		if name == "multiprio" {
			dot := filepath.Join(*outDir, "hier.dot")
			f, err := os.Create(dot)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.WriteDOT(f, 400); err != nil {
				log.Fatal(err)
			}
			f.Close()
			chrome := filepath.Join(*outDir, "hier-trace.json")
			cf, err := os.Create(chrome)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Trace.WriteChromeTrace(cf); err != nil {
				log.Fatal(err)
			}
			cf.Close()
			fmt.Printf("  exported %s and %s\n", dot, chrome)
		}
	}
}
