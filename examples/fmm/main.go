// FMM: the task-based Fast Multipole Method workload (TBFMM-style group
// tree) on both of the paper's platform models, showing why the
// disconnected DAG rewards MultiPrio's per-task affinity scores.
//
// Run with: go run ./examples/fmm [-particles 500000] [-height 6] [-uniform]
package main

import (
	"flag"
	"fmt"
	"log"

	"multiprio/internal/apps/fmm"
	"multiprio/internal/experiments"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
)

func main() {
	particles := flag.Int("particles", 500_000, "particle count")
	height := flag.Int("height", 6, "octree height")
	uniform := flag.Bool("uniform", false, "uniform instead of clustered particle distribution")
	flag.Parse()

	for _, pf := range []string{"intel-v100", "amd-a100"} {
		m, err := experiments.PlatformByName(pf, 2)
		if err != nil {
			log.Fatal(err)
		}
		p := fmm.Params{
			Particles: *particles, Height: *height,
			Clustered: !*uniform, Machine: m, Seed: 42,
		}
		tree := fmm.BuildTree(p)
		fmt.Printf("[%s] FMM %d particles, height %d, %d leaf groups\n",
			pf, *particles, *height, fmm.NumGroups(p, tree))
		for _, name := range []string{"multiprio", "dmdas", "heteroprio"} {
			g := fmm.BuildFromTree(p, tree)
			s, err := experiments.NewScheduler(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(m, g, s, sim.Options{})
			if err != nil {
				log.Fatal(err)
			}
			// P2P share per architecture shows who got the accelerated
			// kernel.
			var p2pGPU, p2pAll int
			for _, sp := range res.Trace.Spans {
				if sp.Kind != "p2p" {
					continue
				}
				p2pAll++
				if m.Units[sp.Worker].Arch == platform.ArchGPU {
					p2pGPU++
				}
			}
			fmt.Printf("  %-12s makespan %8.2fms   cpu idle %5.1f%%  gpu idle %5.1f%%  p2p on GPU %3d/%d\n",
				name, res.Makespan*1e3,
				res.Trace.ArchIdlePercent(platform.ArchCPU),
				res.Trace.ArchIdlePercent(platform.ArchGPU),
				p2pGPU, p2pAll)
		}
		fmt.Println()
	}
}
