// SparseQR: the multifrontal QR workload of the paper's Fig. 8 on one
// matrix of the evaluation set, with the per-kernel per-architecture
// execution split and the practical critical path.
//
// Run with: go run ./examples/sparseqr [-matrix TF17] [-platform intel-v100]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/experiments"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func main() {
	matrix := flag.String("matrix", "TF17", "matrix name from the paper's Fig. 7 set")
	platformName := flag.String("platform", "intel-v100", "platform model")
	flag.Parse()

	stats, ok := sparseqr.ByName(*matrix)
	if !ok {
		log.Fatalf("unknown matrix %q; available:", *matrix)
	}
	m, err := experiments.PlatformByName(*platformName, 4)
	if err != nil {
		log.Fatal(err)
	}
	tree := sparseqr.BuildTree(stats)
	fmt.Printf("%s: %d×%d, %d nonzeros, %.0f Gflop published -> %d fronts, %.0f Gflop generated\n",
		stats.Name, stats.Rows, stats.Cols, stats.Nonzeros, stats.OpCount,
		len(tree.Fronts), tree.TotalFlops()/1e9)

	for _, name := range []string{"multiprio", "dmdas", "heteroprio"} {
		g := sparseqr.BuildFromTree(tree, sparseqr.Params{Machine: m})
		s, err := experiments.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(m, g, s, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s] makespan %.3fs (%.0f GFlop/s effective)\n",
			name, res.Makespan, g.TotalFlops()/res.Makespan/1e9)

		type key struct{ kind, arch string }
		count := map[key]int{}
		for _, sp := range res.Trace.Spans {
			count[key{sp.Kind, m.ArchName(m.Units[sp.Worker].Arch)}]++
		}
		keys := make([]key, 0, len(count))
		for k := range count {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].kind != keys[j].kind {
				return keys[i].kind < keys[j].kind
			}
			return keys[i].arch < keys[j].arch
		})
		for _, k := range keys {
			fmt.Printf("  %-10s on %-4s %6d tasks\n", k.kind, k.arch, count[k])
		}
		cp := runtime.PracticalCriticalPath(g)
		fmt.Printf("  practical critical path: %d tasks\n", len(cp))
	}
}
