// Calibrate: the StarPU-style performance-model workflow — execute real
// kernels on the threaded engine while recording execution times into
// the history model, persist the calibration to JSON, reload it, and
// show schedulers estimating from measurements instead of static priors.
//
// Run with: go run ./examples/calibrate [-tiles 4] [-tile 64] [-out /tmp/perfmodel.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"multiprio/internal/apps/dense"
	"multiprio/internal/core"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

func main() {
	tiles := flag.Int("tiles", 4, "tiles per dimension")
	tile := flag.Int("tile", 64, "tile size (real kernels: keep small)")
	out := flag.String("out", os.TempDir()+"/perfmodel.json", "calibration file")
	flag.Parse()

	m := platform.CPUOnly(4)
	hist := perfmodel.NewHistory()

	// Pass 1: run a real Cholesky factorization, recording every kernel.
	g, verify := dense.CholeskyWithKernels(dense.Params{
		Tiles: *tiles, TileSize: *tile, Machine: m,
	}, 42)
	eng, err := runtime.NewThreadedEngine(m, core.New(core.Defaults()), runtime.WithHistory(hist))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify(1e-8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibration run: %d tasks in %.2fms, factorization verified\n",
		len(g.Tasks), res.Makespan*1e3)

	// Persist and reload, as StarPU does across program runs.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := hist.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	restored := perfmodel.NewHistory()
	rf, err := os.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.Load(rf); err != nil {
		log.Fatal(err)
	}
	rf.Close()
	fmt.Printf("calibration persisted to %s and reloaded:\n%s", *out, restored.Dump())

	// Schedulers now estimate from the measurements.
	for _, kind := range []string{"potrf", "trsm", "syrk", "gemm"} {
		mean, ok := restored.Mean(kind, platform.ArchCPU, uint64(*tile))
		if !ok {
			log.Fatalf("no calibration for %s", kind)
		}
		n := restored.Samples(kind, platform.ArchCPU, uint64(*tile))
		fmt.Printf("  δ(%s, cpu) = %.3gms over %d samples (±%.3gms)\n",
			kind, mean*1e3, n, restored.StdDev(kind, platform.ArchCPU, uint64(*tile))*1e3)
	}
}
