// Quickstart: the Sequential-Task-Flow API on the real threaded engine.
//
// The program registers data handles, submits tasks with access modes —
// the runtime infers the DAG exactly like StarPU's STF model — and
// executes them on goroutine workers under the MultiPrio scheduler.
// Kernels are ordinary Go functions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

func main() {
	g := runtime.NewGraph()

	// Three counters, each updated by a chain of increments; a final
	// task reads all of them. The runtime infers every dependency from
	// the access modes.
	const chains, steps = 3, 5
	counters := make([]*int, chains)
	handles := make([]*runtime.DataHandle, chains)
	for c := 0; c < chains; c++ {
		counters[c] = new(int)
		handles[c] = g.NewData(fmt.Sprintf("counter%d", c), 8)
	}

	for s := 0; s < steps; s++ {
		for c := 0; c < chains; c++ {
			c := c
			g.Submit(&runtime.Task{
				Kind: "inc",
				Cost: []float64{1e-6}, // CPU-only scheduling estimate
				Accesses: []runtime.Access{
					{Handle: handles[c], Mode: runtime.RW},
				},
				Run: func(w runtime.WorkerInfo) { *counters[c]++ },
			})
		}
	}
	total := new(int)
	hTotal := g.NewData("total", 8)
	acc := []runtime.Access{{Handle: hTotal, Mode: runtime.W}}
	for c := 0; c < chains; c++ {
		acc = append(acc, runtime.Access{Handle: handles[c], Mode: runtime.R})
	}
	g.Submit(&runtime.Task{
		Kind:     "sum",
		Cost:     []float64{1e-6},
		Accesses: acc,
		Run: func(w runtime.WorkerInfo) {
			for c := 0; c < chains; c++ {
				*total += *counters[c]
			}
		},
	})

	eng, err := runtime.NewThreadedEngine(platform.CPUOnly(4), core.New(core.Defaults()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d tasks on 4 workers in %.3fms\n", len(g.Tasks), res.Makespan*1e3)
	fmt.Printf("total = %d (want %d)\n", *total, chains*steps)
	if *total != chains*steps {
		log.Fatal("dependency inference failed")
	}
	fmt.Println("every increment chain was serialized, the sum ran last: STF works.")
}
