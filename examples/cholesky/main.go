// Cholesky: a tiled dense factorization on a simulated heterogeneous
// node (the paper's Intel-V100 model), comparing every scheduling
// policy and dumping a Gantt chart of the best run.
//
// Run with: go run ./examples/cholesky [-tiles 20] [-tile 960]
package main

import (
	"flag"
	"fmt"
	"log"

	"multiprio/internal/apps/dense"
	"multiprio/internal/experiments"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

func main() {
	tiles := flag.Int("tiles", 20, "tile count per dimension")
	tile := flag.Int("tile", 960, "tile size")
	flag.Parse()

	m := platform.IntelV100(platform.Config{})
	fmt.Printf("Cholesky %d×%d tiles of %d on %s\n\n", *tiles, *tiles, *tile, m)

	type result struct {
		name     string
		makespan float64
		tr       *trace.Trace
	}
	var best *result
	fmt.Printf("%-12s %10s %9s %9s %9s\n", "scheduler", "GFlop/s", "makespan", "cpu idle", "gpu idle")
	for _, name := range []string{"multiprio", "dmdas", "heteroprio", "lws", "eager"} {
		p := dense.Params{Tiles: *tiles, TileSize: *tile, Machine: m, UserPriorities: true}
		g := dense.Cholesky(p)
		s, err := experiments.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(m, g, s, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.0f %8.3fs %8.1f%% %8.1f%%\n",
			name, g.TotalFlops()/res.Makespan/1e9, res.Makespan,
			res.Trace.ArchIdlePercent(platform.ArchCPU),
			res.Trace.ArchIdlePercent(platform.ArchGPU))
		if best == nil || res.Makespan < best.makespan {
			best = &result{name: name, makespan: res.Makespan, tr: res.Trace}
		}
	}

	fmt.Printf("\nGantt of the best run (%s):\n", best.name)
	fmt.Print(best.tr.Gantt(100))
}
