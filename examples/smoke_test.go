// Package examples_test compiles and runs every example program with
// tiny parameters, asserting a zero exit status and non-empty output.
// The examples are the repository's user-facing entry points; they must
// never rot silently.
package examples_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	bin := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"quickstart", nil},
		{"cholesky", []string{"-tiles", "4", "-tile", "64"}},
		// 3 tiles is the smallest factorization that emits every kernel
		// kind (one gemm); calibrate requires samples for all four.
		{"calibrate", []string{"-tiles", "3", "-tile", "32", "-out", filepath.Join(bin, "perfmodel.json")}},
		{"fmm", []string{"-particles", "500", "-height", "3"}},
		{"hierarchical", []string{"-blocks", "2", "-sub", "2", "-tile", "64", "-out", bin}},
		{"sparseqr", []string{"-matrix", "cat_ears_4_4"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			exe := filepath.Join(bin, c.name)
			build := exec.CommandContext(ctx, "go", "build", "-o", exe, "./"+c.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s: %v\n%s", c.name, err, out)
			}
			run := exec.CommandContext(ctx, exe, c.args...)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", c.name)
			}
			t.Logf("%s: %d bytes of output", c.name, len(out))
		})
	}
}
