// Package bench holds the hot-path micro-benchmark suite that seeds the
// performance trajectory (BENCH_sweep.json). Unlike the repo-root
// benchmarks, which regenerate whole paper artifacts, these isolate the
// per-operation costs the optimization work targets: heap operations,
// MultiPrio PUSH/POP, Dmdas PUSH, the simulator event loop, and STF
// dependency inference.
//
// Every benchmark does a fixed batch of work per iteration (a whole
// graph pushed, a whole heap drained), so a single iteration is already
// a meaningful sample: CI runs the suite with `-benchtime=1x -count=3`
// and gates on the machine-independent allocation counts via
// cmd/benchjson (see .github/workflows/ci.yml).
//
// Refresh the committed baseline after intentional performance changes:
//
//	go test ./bench -bench . -benchmem -run '^$' -count=3 | go run ./cmd/benchjson -o bench/baseline.json
package bench

import (
	"testing"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/core"
	"multiprio/internal/heap"
	"multiprio/internal/obs"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sim"
	"multiprio/internal/telemetry"
)

// benchGraph builds the shared mid-size Cholesky DAG (Tiles=12 is 364
// tasks) on the paper's Intel+V100 platform.
func benchGraph() (*platform.Machine, *runtime.Graph) {
	m := platform.IntelV100(platform.Config{})
	g := dense.Cholesky(dense.Params{Tiles: 12, TileSize: 960, Machine: m, UserPriorities: true})
	return m, g
}

// workerInfos lists every processing unit as scheduler-visible worker.
func workerInfos(m *platform.Machine) []runtime.WorkerInfo {
	ws := make([]runtime.WorkerInfo, len(m.Units))
	for i, u := range m.Units {
		ws[i] = runtime.WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem}
	}
	return ws
}

// xorshift is a tiny deterministic score source (no math/rand needed).
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// BenchmarkHeapOps measures the indexed max-heap on a mixed workload:
// 8192 pushes, score updates on half of them, removal of a quarter by
// identity, then a full drain.
func BenchmarkHeapOps(b *testing.B) {
	const n = 8192
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := heap.New(n)
		s := uint64(i + 1)
		for id := int64(0); id < n; id++ {
			s = xorshift(s)
			h.Push(id, heap.Score{Primary: float64(s % 1000), Secondary: float64(id)})
		}
		for id := int64(0); id < n; id += 2 {
			s = xorshift(s)
			h.Update(id, heap.Score{Primary: float64(s % 1000), Secondary: float64(id)})
		}
		for id := int64(0); id < n; id += 4 {
			h.Remove(id)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

// BenchmarkHeapTopN measures the bounded non-mutating top-n scan POP
// runs on every idle worker wake-up (n=10, the paper's setting).
func BenchmarkHeapTopN(b *testing.B) {
	const n = 2048
	h := heap.New(n)
	s := uint64(7)
	for id := int64(0); id < n; id++ {
		s = xorshift(s)
		h.Push(id, heap.Score{Primary: float64(s % 1000), Secondary: float64(id)})
	}
	var buf []heap.ScoredID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 512; k++ {
			buf = h.TopNScored(buf[:0], 10)
		}
	}
	if len(buf) != 10 {
		b.Fatalf("TopNScored returned %d candidates", len(buf))
	}
}

// BenchmarkMultiPrioPush measures Algorithm 1 alone: scoring and
// inserting every task of the Cholesky DAG into the per-node heaps.
func BenchmarkMultiPrioPush(b *testing.B) {
	m, g := benchGraph()
	env := runtime.NewEnv(m, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		s := core.New(core.Defaults())
		s.Init(env)
		for _, t := range g.Tasks {
			s.Push(t)
		}
	}
}

// BenchmarkMultiPrioPushPop measures the full PUSH + locality-aware POP
// cycle: the whole DAG is pushed, then drained by round-robin worker
// pops (exercising LS_SDH², the pop condition and eviction).
func BenchmarkMultiPrioPushPop(b *testing.B) {
	m, g := benchGraph()
	env := runtime.NewEnv(m, g)
	workers := workerInfos(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		s := core.New(core.Defaults())
		s.Init(env)
		for _, t := range g.Tasks {
			s.Push(t)
		}
		popped := 0
		for progress := true; progress; {
			progress = false
			for _, w := range workers {
				if t := s.Pop(w); t != nil {
					s.TaskDone(t, w)
					popped++
					progress = true
				}
			}
		}
		if popped != len(g.Tasks) {
			b.Fatalf("drained %d of %d tasks", popped, len(g.Tasks))
		}
	}
}

// BenchmarkMultiPrioPushPopObserved is BenchmarkMultiPrioPushPop with a
// realistic probe attached (decision log + metrics recorder fanned out
// through obs.Multi). The delta against the unobserved benchmark is the
// cost of observation; the unobserved benchmark itself, gated against
// the committed baseline, proves the nil-probe path stayed free.
func BenchmarkMultiPrioPushPopObserved(b *testing.B) {
	m, g := benchGraph()
	env := runtime.NewEnv(m, g)
	workers := workerInfos(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		env.Probe = obs.Multi{&obs.DecisionLog{}, obs.NewMetrics()}
		b.StartTimer()
		s := core.New(core.Defaults())
		s.Init(env)
		for _, t := range g.Tasks {
			s.Push(t)
		}
		popped := 0
		for progress := true; progress; {
			progress = false
			for _, w := range workers {
				if t := s.Pop(w); t != nil {
					s.TaskDone(t, w)
					popped++
					progress = true
				}
			}
		}
		if popped != len(g.Tasks) {
			b.Fatalf("drained %d of %d tasks", popped, len(g.Tasks))
		}
	}
}

// BenchmarkDmdasPush measures the HEFT mapping step: minimum expected
// completion time over every worker, including transfer estimates.
func BenchmarkDmdasPush(b *testing.B) {
	m, g := benchGraph()
	env := runtime.NewEnv(m, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		s := dmdas.New(dmdas.DMDAS)
		s.Init(env)
		for _, t := range g.Tasks {
			s.Push(t)
		}
	}
}

// BenchmarkSimEventLoop measures the discrete-event simulator end to
// end on the shared DAG with the trivial eager policy, so the event
// queue and the memory manager dominate over scheduling heuristics.
func BenchmarkSimEventLoop(b *testing.B) {
	m, g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		if _, err := sim.Run(m, g, eager.New(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEventLoopObserved is BenchmarkSimEventLoop with the full
// probe stack attached: engine progress counters, memory-manager usage
// and eviction tracks, and transfer-queue depth all flow into a metrics
// recorder plus a decision log.
func BenchmarkSimEventLoopObserved(b *testing.B) {
	m, g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		probe := obs.Multi{&obs.DecisionLog{}, obs.NewMetrics()}
		b.StartTimer()
		if _, err := sim.Run(m, g, eager.New(), sim.Options{Probe: probe}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEventLoopTelemetry is BenchmarkSimEventLoop with the
// production telemetry probe attached as the run observer, the way
// `multiprio-bench -serve` runs: one long-lived probe accumulating
// histograms across runs. The delta against BenchmarkSimEventLoop is
// the full cost of live telemetry; BenchmarkSimEventLoop itself, gated
// against the committed baseline, proves the nil-observer path did not
// pick up a single allocation from the telemetry layer.
func BenchmarkSimEventLoopTelemetry(b *testing.B) {
	m, g := benchGraph()
	p := telemetry.NewProbe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		if _, err := sim.Run(m, g, eager.New(), sim.Options{Observer: p}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryTaskDone isolates the probe's hottest operation:
// one TaskDone decision (two histogram observations, a completion
// counter, a busy-seconds accumulation, a kind counter). The gate pins
// this at zero allocations per op — every label handle is resolved at
// RunStart, so steady-state recording is pure atomics.
func BenchmarkTelemetryTaskDone(b *testing.B) {
	m, _ := benchGraph()
	p := telemetry.NewProbe()
	p.RunStart(runtime.RunInfo{Machine: m, Tasks: 1, Scheduler: "bench", Engine: "sim"})
	d := obs.Decision{Kind: obs.TaskDone, At: 2, A: 1, B: 0.5, Worker: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Task = int64(i)
		p.Decision(d)
	}
}

// BenchmarkTelemetryCounterTrack isolates the probe's Counter path: a
// bracketed gauge track ("mem.used[gpu0]") projected into a labeled
// family. Steady-state cost is one map hit under RLock plus an atomic
// store; the gate pins it at zero allocations per op.
func BenchmarkTelemetryCounterTrack(b *testing.B) {
	p := telemetry.NewProbe()
	p.Counter("mem.used[gpu0]", 0, 0, 0) // materialize the instance
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Counter("mem.used[gpu0]", float64(i), int64(i), float64(i%4096))
	}
}

// BenchmarkSTFSubmit measures sequential-task-flow dependency
// inference: building the Cholesky DAG from scratch, dominated by
// Graph.Submit's read/write dependency resolution.
func BenchmarkSTFSubmit(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	p := dense.Params{Tiles: 12, TileSize: 960, Machine: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dense.Cholesky(p)
		if len(g.Tasks) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// scaleParams is the 10^5-task random DAG of the scaling study
// (`multiprio-bench -exp scale`): 2000 layers of 50 tasks.
func scaleParams(m *platform.Machine) randdag.Params {
	return randdag.Params{Layers: 2000, Width: 50, EdgeProb: 0.1, Machine: m, Seed: 42}
}

// BenchmarkSubmitBatch1e5 measures graph construction alone at the
// scaling study's 10^5-task size: arena-backed SubmitBatch plus
// epoch-deduplicated dependency inference. Reports build throughput as
// tasks/s (gated downward by benchjson with -throughput-threshold).
func BenchmarkSubmitBatch1e5(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	p := scaleParams(m)
	b.ReportAllocs()
	b.ResetTimer()
	var tasks int
	for i := 0; i < b.N; i++ {
		g := randdag.Build(p)
		if len(g.Tasks) == 0 {
			b.Fatal("empty graph")
		}
		tasks += len(g.Tasks)
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkSimThroughput1e5 is the million-task hot path's regression
// anchor: the full simulator (calendar event queue, arena task blocks,
// intrusive-LRU memory manager) executing the 10^5-task random DAG
// under the eager policy, so engine mechanics dominate over scheduling
// heuristics. Reports end-to-end execution throughput as tasks/s.
func BenchmarkSimThroughput1e5(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	g := randdag.Build(scaleParams(m))
	b.ReportAllocs()
	b.ResetTimer()
	var tasks int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.ResetRun()
		b.StartTimer()
		res, err := sim.Run(m, g, eager.New(), sim.Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan <= 0 {
			b.Fatal("degenerate makespan")
		}
		tasks += len(g.Tasks)
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkHEFTPlan1e4 measures static-plan construction throughput:
// a full HEFT pass (upward ranks, EFT insertion over every unit, order
// extraction) over a 10^4-task random DAG. One iteration builds one
// complete plan; reports planning throughput as tasks/s.
func BenchmarkHEFTPlan1e4(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	g := randdag.Build(randdag.Params{Layers: 200, Width: 50, EdgeProb: 0.1, Machine: m, Seed: 42})
	env := runtime.NewEnv(m, g)
	b.ReportAllocs()
	b.ResetTimer()
	var tasks int
	for i := 0; i < b.N; i++ {
		p, err := heft.BuildPlan(env, heft.RankUpward)
		if err != nil {
			b.Fatal(err)
		}
		if p.Makespan <= 0 {
			b.Fatal("degenerate plan")
		}
		tasks += len(g.Tasks)
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}
