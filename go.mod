module multiprio

go 1.22
