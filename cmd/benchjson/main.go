// Command benchjson turns `go test -bench` output into the
// machine-readable BENCH_sweep.json artifact and gates performance
// regressions against a committed baseline.
//
// It accepts both the plain benchmark text format and the `-json`
// (test2json) stream on stdin or from file arguments, aggregates
// repeated runs (`-count=N`) by taking the minimum per metric (the
// least-noisy sample), and emits one JSON document:
//
//	go test ./bench -bench . -benchmem -run '^$' -count=3 | go run ./cmd/benchjson -o BENCH_sweep.json
//
// With -baseline, the new numbers are compared entry by entry and the
// command exits non-zero when a gated metric regressed by more than
// -threshold (default 0.30, i.e. +30%). CI gates on allocs/op: unlike
// ns/op it is machine-independent, so a baseline committed from a
// developer machine stays meaningful on any runner. Wall-clock numbers
// are still recorded and reported for human inspection.
//
// Benchmarks that report a custom "tasks/s" metric (b.ReportMetric) are
// additionally gated on throughput: aggregation takes the maximum
// across -count runs (higher is better) and the gate fails when tasks/s
// dropped by more than -throughput-threshold (default 0.60 — loose,
// because wall-clock throughput varies across runners far more than
// allocation counts; the gate exists to catch order-of-magnitude
// collapses of the million-task hot path, not CPU jitter).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated result.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// TasksPerSec is the custom throughput metric the bench suite
	// reports via b.ReportMetric(..., "tasks/s"). Higher is better, so
	// aggregation takes the maximum across -count runs and the gate
	// fires on drops rather than rises.
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
}

// Report is the BENCH_sweep.json document.
type Report struct {
	Schema     string  `json:"schema"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "compare against this previously generated report")
	threshold := flag.Float64("threshold", 0.30, "maximum allowed fractional regression per gated metric")
	tputThreshold := flag.Float64("throughput-threshold", 0.60, "maximum allowed fractional tasks/s drop before the throughput gate fails")
	gate := flag.String("gate", "allocs,throughput", "comma-separated metrics that fail the build on regression: ns, bytes, allocs, throughput")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		if !compare(os.Stderr, base, rep, *threshold, *tputThreshold, parseGate(*gate)) {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(2)
}

// parse consumes plain `go test -bench` output or a test2json stream.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "multiprio-bench/v1"}
	acc := map[string]*Entry{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			// test2json event: the benchmark text rides in Output.
			var ev struct{ Action, Output string }
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Action == "output" {
				line = strings.TrimSuffix(ev.Output, "\n")
			} else {
				continue
			}
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := acc[m[1]]
		if e == nil {
			e = &Entry{Name: m[1], NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1, TasksPerSec: -1}
			acc[m[1]] = e
			order = append(order, m[1])
		}
		e.Runs++
		if ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		rest := m[4]
		if v, ok := metric(rest, "B/op"); ok && (e.BytesPerOp < 0 || v < e.BytesPerOp) {
			e.BytesPerOp = v
		}
		if v, ok := metric(rest, "allocs/op"); ok && (e.AllocsPerOp < 0 || v < e.AllocsPerOp) {
			e.AllocsPerOp = v
		}
		if v, ok := metric(rest, "tasks/s"); ok && v > e.TasksPerSec {
			e.TasksPerSec = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	for _, name := range order {
		e := acc[name]
		if e.BytesPerOp < 0 {
			e.BytesPerOp = 0
		}
		if e.AllocsPerOp < 0 {
			e.AllocsPerOp = 0
		}
		if e.TasksPerSec < 0 {
			e.TasksPerSec = 0
		}
		rep.Benchmarks = append(rep.Benchmarks, *e)
	}
	return rep, nil
}

// metric extracts "<value> <unit>" from the tail of a benchmark line.
func metric(rest, unit string) (float64, bool) {
	fields := strings.Fields(rest)
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func parseGate(s string) map[string]bool {
	gates := map[string]bool{}
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates[g] = true
		}
	}
	return gates
}

// compare prints a per-benchmark delta table and reports whether every
// gated metric stayed within the threshold. Cost metrics (ns, bytes,
// allocs) regress upward; tasks/s regresses downward, against its own
// looser threshold (wall-clock throughput varies more across runners
// than allocation counts do). Benchmarks present on only one side are
// reported but never fail the gate (the suite may grow).
func compare(w io.Writer, base, cur *Report, threshold, tputThreshold float64, gates map[string]bool) bool {
	baseBy := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	ok := true
	fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ", "tasks/s Δ")
	for _, e := range cur.Benchmarks {
		b, found := baseBy[e.Name]
		if !found {
			fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", e.Name, "new", "new", "new", "new")
			continue
		}
		delete(baseBy, e.Name)
		cells := make([]string, 0, 4)
		for _, mt := range []struct {
			key       string
			cur, base float64
			inverted  bool // higher is better; regression is a drop
			limit     float64
		}{
			{"ns", e.NsPerOp, b.NsPerOp, false, threshold},
			{"bytes", e.BytesPerOp, b.BytesPerOp, false, threshold},
			{"allocs", e.AllocsPerOp, b.AllocsPerOp, false, threshold},
			{"throughput", e.TasksPerSec, b.TasksPerSec, true, tputThreshold},
		} {
			if mt.base <= 0 {
				cells = append(cells, "-")
				continue
			}
			ratio := mt.cur/mt.base - 1
			cell := fmt.Sprintf("%+.1f%%", 100*ratio)
			regressed := ratio > mt.limit
			if mt.inverted {
				regressed = -ratio > mt.limit
			}
			if regressed {
				if gates[mt.key] {
					cell += " FAIL"
					ok = false
				} else {
					cell += " !"
				}
			}
			cells = append(cells, cell)
		}
		fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", e.Name, cells[0], cells[1], cells[2], cells[3])
	}
	for name := range baseBy {
		fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", name, "gone", "gone", "gone", "gone")
	}
	if !ok {
		fmt.Fprintf(w, "benchjson: regression beyond %.0f%% on gated metrics\n", 100*threshold)
	}
	return ok
}
