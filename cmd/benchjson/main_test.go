package main

import (
	"io"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: multiprio/bench
cpu: Test CPU
BenchmarkSimThroughput-8   	       1	700000000 ns/op	  140000 tasks/s	  123456 B/op	    2000 allocs/op
BenchmarkSimThroughput-8   	       1	650000000 ns/op	  150000 tasks/s	  123000 B/op	    2000 allocs/op
BenchmarkHeapOps-8         	       1	 4776416 ns/op	  492208 B/op	      35 allocs/op
PASS
`

func parseString(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func entry(t *testing.T, rep *Report, name string) Entry {
	t.Helper()
	for _, e := range rep.Benchmarks {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("benchmark %q not found", name)
	return Entry{}
}

// TestParseTasksPerSec checks the custom throughput metric is picked up
// and aggregated by maximum (higher is better), while cost metrics keep
// their minimum aggregation.
func TestParseTasksPerSec(t *testing.T) {
	rep := parseString(t, sample)
	e := entry(t, rep, "BenchmarkSimThroughput")
	if e.TasksPerSec != 150000 {
		t.Errorf("TasksPerSec = %g, want max-aggregated 150000", e.TasksPerSec)
	}
	if e.NsPerOp != 650000000 {
		t.Errorf("NsPerOp = %g, want min-aggregated 650000000", e.NsPerOp)
	}
	if h := entry(t, rep, "BenchmarkHeapOps"); h.TasksPerSec != 0 {
		t.Errorf("benchmark without the metric got TasksPerSec = %g", h.TasksPerSec)
	}
}

// TestThroughputGateDirection checks the gate is direction-aware: a
// drop beyond the threshold fails, an equal-size rise never does.
func TestThroughputGateDirection(t *testing.T) {
	base := parseString(t, sample)
	gates := map[string]bool{"allocs": true, "throughput": true}

	drop := parseString(t, strings.ReplaceAll(sample, "0000 tasks/s", "000 tasks/s")) // 14k/15k
	if compare(io.Discard, base, drop, 0.30, 0.60, gates) {
		t.Error("90%% throughput drop passed the 60%% gate")
	}

	rise := parseString(t, strings.ReplaceAll(sample, "0000 tasks/s", "00000 tasks/s")) // 1.4M/1.5M
	if !compare(io.Discard, base, rise, 0.30, 0.60, gates) {
		t.Error("10x throughput rise failed the gate")
	}
}

// TestAllocGateStillFires keeps the original cost gate intact alongside
// the throughput extension.
func TestAllocGateStillFires(t *testing.T) {
	base := parseString(t, sample)
	worse := parseString(t, strings.ReplaceAll(sample, "35 allocs/op", "99 allocs/op"))
	if compare(io.Discard, base, worse, 0.30, 0.60, map[string]bool{"allocs": true}) {
		t.Error("+183%% allocs/op passed the 30%% gate")
	}
}
