// Command multiprio-trace runs one workload/scheduler configuration in
// the simulator and dumps the execution summary, per-resource idle
// shares, transfer volumes, an ASCII Gantt chart and the practical
// critical path — the same diagnostics the paper reads off StarVZ
// traces.
//
// Usage:
//
//	multiprio-trace -app cholesky|lu|qr|hier|fmm|sparseqr -sched multiprio
//	                [-platform intel-v100] [-tiles 24] [-tile 960]
//	                [-particles 200000] [-height 5] [-matrix e18]
//	                [-streams 1] [-gantt] [-width 120]
//	                [-chrome trace.json] [-counters-in-chrome]
//	                [-decisions decisions.log] [-metrics metrics.csv]
//	                [-metrics-json metrics.json]
//
// Observability (see DESIGN.md, "Observability"):
//
//	-decisions FILE   canonical scheduler decision log (push/score/pop/
//	                  evict/map events with gain scores, LS_SDH² and
//	                  evict-retry counts), deterministic for a fixed
//	                  seed and diffable across runs.
//	-metrics FILE     simulated-time counter tracks (ready counts, mem
//	                  usage, prefetch hits, transfer queue depth) as CSV.
//	-metrics-json FILE same, as JSON.
//	-counters-in-chrome merge the counter tracks into the -chrome output
//	                  as Perfetto counter tracks ("C" events).
//
// When -chrome is set, a decision log is collected regardless of
// -decisions so task tooltips carry scheduler context (gain score,
// memory node, evict retries).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/core"
	"multiprio/internal/experiments"
	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

// config collects every flag of the run.
type config struct {
	app, sched, platform    string
	tiles, tile             int
	prios                   bool
	particles, height       int
	clustered               bool
	matrix                  string
	streams                 int
	gantt                   bool
	width, locN             int
	eps                     float64
	hist                    bool
	chromeOut, csvOut       string
	dotOut                  string
	decisionsOut            string
	metricsOut, metricsJSON string
	countersInChrome        bool
}

func main() {
	var c config
	flag.StringVar(&c.app, "app", "cholesky", "workload: cholesky, lu, qr, hier, fmm, sparseqr")
	flag.StringVar(&c.sched, "sched", "multiprio", "scheduler: multiprio (+ -noevict/-nocrit/-nolocal/-flatgain), dmdas, dmdar, dmda, dm, heteroprio, lws, prio, eager")
	flag.StringVar(&c.platform, "platform", "intel-v100", "platform: intel-v100, amd-a100, smallsim")
	flag.IntVar(&c.tiles, "tiles", 24, "dense: tile count per dimension")
	flag.IntVar(&c.tile, "tile", 960, "dense: tile size")
	flag.BoolVar(&c.prios, "prios", true, "dense: expert (bottom-level) user priorities for dmdas")
	flag.IntVar(&c.particles, "particles", 200000, "fmm: particle count")
	flag.IntVar(&c.height, "height", 5, "fmm: octree height")
	flag.BoolVar(&c.clustered, "clustered", false, "fmm: clustered particle distribution")
	flag.StringVar(&c.matrix, "matrix", "e18", "sparseqr: matrix name from the Fig. 7 set")
	flag.IntVar(&c.streams, "streams", 1, "GPU streams per device")
	flag.BoolVar(&c.gantt, "gantt", false, "print the ASCII Gantt chart")
	flag.IntVar(&c.width, "width", 120, "Gantt width in columns")
	flag.IntVar(&c.locN, "n", 0, "multiprio: override locality window n")
	flag.Float64Var(&c.eps, "eps", 0, "multiprio: override epsilon")
	flag.BoolVar(&c.hist, "hist", false, "history-based performance model (StarPU-style footprint buckets) instead of oracle")
	flag.StringVar(&c.chromeOut, "chrome", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	flag.StringVar(&c.csvOut, "csv", "", "write the task spans as CSV to this file")
	flag.StringVar(&c.dotOut, "dot", "", "write the task DAG in Graphviz DOT format to this file (truncated to 2000 tasks)")
	flag.StringVar(&c.decisionsOut, "decisions", "", "write the canonical scheduler decision log to this file")
	flag.StringVar(&c.metricsOut, "metrics", "", "write the simulated-time counter tracks as CSV to this file")
	flag.StringVar(&c.metricsJSON, "metrics-json", "", "write the simulated-time counter tracks as JSON to this file")
	flag.BoolVar(&c.countersInChrome, "counters-in-chrome", false, "merge counter tracks into the -chrome output as Perfetto counter tracks")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintf(os.Stderr, "multiprio-trace: %v\n", err)
		os.Exit(1)
	}
}

// writeTo creates path and hands the file to emit, reporting what was
// written on success.
func writeTo(path, what string, emit func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  wrote %s to %s\n", what, path)
	return nil
}

func run(c config) error {
	m, err := experiments.PlatformByName(c.platform, c.streams)
	if err != nil {
		return err
	}
	var g *runtime.Graph
	switch c.app {
	case "cholesky":
		g = dense.Cholesky(dense.Params{Tiles: c.tiles, TileSize: c.tile, Machine: m, UserPriorities: c.prios})
	case "lu":
		g = dense.LU(dense.Params{Tiles: c.tiles, TileSize: c.tile, Machine: m, UserPriorities: c.prios})
	case "qr":
		g = dense.QR(dense.Params{Tiles: c.tiles, TileSize: c.tile, Machine: m, UserPriorities: c.prios})
	case "hier":
		g = dense.HierarchicalCholesky(dense.HierParams{
			Blocks: c.tiles, SubTiles: 5, TileSize: c.tile, Machine: m, UserPriorities: c.prios,
		})
	case "fmm":
		g = fmm.Build(fmm.Params{Particles: c.particles, Height: c.height, Clustered: c.clustered, Machine: m, Seed: 12})
	case "sparseqr":
		stats, ok := sparseqr.ByName(c.matrix)
		if !ok {
			return fmt.Errorf("unknown matrix %q", c.matrix)
		}
		g = sparseqr.Build(stats, sparseqr.Params{Machine: m})
	default:
		return fmt.Errorf("unknown app %q", c.app)
	}

	// The registry resolves the policy by name; -n/-eps are generic
	// knobs (registry.Options) that policies without a matching config
	// field simply ignore.
	s, err := registry.New(c.sched, registry.Options{LocalityWindow: c.locN, Epsilon: c.eps})
	if err != nil {
		return err
	}
	opts := sim.Options{}
	if c.hist {
		h := perfmodel.NewHistory()
		opts.History = h
		opts.Estimator = h
	}
	// A decision log feeds both -decisions and the Chrome span args; a
	// metrics recorder feeds -metrics/-metrics-json and the Chrome
	// counter tracks. Only attach what some output consumes — with no
	// observability flags the run stays on the probe-free fast path.
	var dl *obs.DecisionLog
	var mx *obs.Metrics
	if c.decisionsOut != "" || c.chromeOut != "" {
		dl = &obs.DecisionLog{}
	}
	if c.metricsOut != "" || c.metricsJSON != "" || (c.countersInChrome && c.chromeOut != "") {
		mx = obs.NewMetrics()
	}
	switch {
	case dl != nil && mx != nil:
		opts.Probe = obs.Multi{dl, mx}
	case dl != nil:
		opts.Probe = dl
	case mx != nil:
		opts.Probe = mx
	}
	res, err := sim.Run(m, g, s, opts)
	if err != nil {
		return err
	}
	if mp, ok := s.(*core.Sched); ok {
		defer fmt.Printf("  multiprio evictions: %d\n", mp.Evictions)
	}

	fmt.Printf("%s on %s under %s: %d tasks, %.1f Gflop\n",
		c.app, m, s.Name(), len(g.Tasks), g.TotalFlops()/1e9)
	fmt.Print(res.Trace.Summary())
	fmt.Printf("  achieved %.0f GFlop/s; critical path bound %.4fs; serial best %.4fs\n",
		g.TotalFlops()/res.Makespan/1e9, g.CriticalPathTime(), g.SerialTime())
	var waitTotal float64
	for _, sp := range res.Trace.Spans {
		waitTotal += sp.Wait
	}
	fmt.Printf("  total transfer-wait inside spans: %.4fs\n", waitTotal)
	type key struct {
		kind string
		arch string
	}
	cnt := map[key]int{}
	tim := map[key]float64{}
	for _, sp := range res.Trace.Spans {
		k := key{sp.Kind, m.ArchName(m.Units[sp.Worker].Arch)}
		cnt[k]++
		tim[k] += sp.End - sp.Start - sp.Wait
	}
	keys := make([]key, 0, len(cnt))
	for k := range cnt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].arch < keys[j].arch
	})
	for _, k := range keys {
		fmt.Printf("  %-10s %-4s %6d tasks %9.4fs\n", k.kind, k.arch, cnt[k], tim[k])
	}
	for mem, ov := range res.OverflowBytes {
		if ov > 0 {
			fmt.Printf("  memory overflow on node %d: %d bytes\n", mem, ov)
		}
	}
	cp := runtime.PracticalCriticalPath(g)
	fmt.Printf("  practical critical path: %d tasks:", len(cp))
	for i, t := range cp {
		if i >= 12 {
			fmt.Printf(" ... (+%d more)", len(cp)-i)
			break
		}
		fmt.Printf(" %s", t.Kind)
	}
	fmt.Println()
	if dl != nil {
		fmt.Printf("  decision log: %d events (%d push, %d pop, %d evict, %d map)\n",
			dl.Len(), dl.CountKind(obs.PushBest), dl.CountKind(obs.PopSelect),
			dl.CountKind(obs.PopEvict), dl.CountKind(obs.MapTask))
	}
	if c.gantt {
		fmt.Println(res.Trace.Gantt(c.width))
	}
	if c.chromeOut != "" {
		co := trace.ChromeOptions{}
		if dl != nil {
			args := dl.SpanArgs(func(mem int) string { return m.Mems[mem].Name })
			co.SpanArgs = func(taskID int64) map[string]string { return args[taskID] }
		}
		if c.countersInChrome && mx != nil {
			co.Counters = trace.ChromeCountersFrom(mx.Tracks())
		}
		if err := writeTo(c.chromeOut, "Chrome trace", func(f *os.File) error {
			return res.Trace.WriteChromeTraceWith(f, co)
		}); err != nil {
			return err
		}
	}
	if c.dotOut != "" {
		if err := writeTo(c.dotOut, "DAG", func(f *os.File) error {
			return g.WriteDOT(f, 2000)
		}); err != nil {
			return err
		}
	}
	if c.csvOut != "" {
		if err := writeTo(c.csvOut, "CSV spans", func(f *os.File) error {
			return res.Trace.WriteCSV(f)
		}); err != nil {
			return err
		}
	}
	if c.decisionsOut != "" {
		if err := writeTo(c.decisionsOut, "decision log", func(f *os.File) error {
			return dl.WriteCanonical(f)
		}); err != nil {
			return err
		}
	}
	if c.metricsOut != "" {
		if err := writeTo(c.metricsOut, "metrics CSV", func(f *os.File) error {
			return mx.WriteCSV(f)
		}); err != nil {
			return err
		}
	}
	if c.metricsJSON != "" {
		if err := writeTo(c.metricsJSON, "metrics JSON", func(f *os.File) error {
			return mx.WriteJSON(f)
		}); err != nil {
			return err
		}
	}
	return nil
}
