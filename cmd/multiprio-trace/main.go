// Command multiprio-trace runs one workload/scheduler configuration in
// the simulator and dumps the execution summary, per-resource idle
// shares, transfer volumes, an ASCII Gantt chart and the practical
// critical path — the same diagnostics the paper reads off StarVZ
// traces.
//
// Usage:
//
//	multiprio-trace -app cholesky|lu|qr|hier|fmm|sparseqr -sched multiprio
//	                [-platform intel-v100] [-tiles 24] [-tile 960]
//	                [-particles 200000] [-height 5] [-matrix e18]
//	                [-streams 1] [-gantt] [-width 120]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/core"
	"multiprio/internal/experiments"
	"multiprio/internal/perfmodel"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

func main() {
	app := flag.String("app", "cholesky", "workload: cholesky, lu, qr, hier, fmm, sparseqr")
	sched := flag.String("sched", "multiprio", "scheduler: multiprio (+ -noevict/-nocrit/-nolocal/-flatgain), dmdas, dmdar, dmda, dm, heteroprio, lws, prio, eager")
	platformName := flag.String("platform", "intel-v100", "platform: intel-v100, amd-a100, smallsim")
	tiles := flag.Int("tiles", 24, "dense: tile count per dimension")
	tile := flag.Int("tile", 960, "dense: tile size")
	prios := flag.Bool("prios", true, "dense: expert (bottom-level) user priorities for dmdas")
	particles := flag.Int("particles", 200000, "fmm: particle count")
	height := flag.Int("height", 5, "fmm: octree height")
	clustered := flag.Bool("clustered", false, "fmm: clustered particle distribution")
	matrix := flag.String("matrix", "e18", "sparseqr: matrix name from the Fig. 7 set")
	streams := flag.Int("streams", 1, "GPU streams per device")
	gantt := flag.Bool("gantt", false, "print the ASCII Gantt chart")
	width := flag.Int("width", 120, "Gantt width in columns")
	locN := flag.Int("n", 0, "multiprio: override locality window n")
	eps := flag.Float64("eps", 0, "multiprio: override epsilon")
	hist := flag.Bool("hist", false, "history-based performance model (StarPU-style footprint buckets) instead of oracle")
	chromeOut := flag.String("chrome", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	csvOut := flag.String("csv", "", "write the task spans as CSV to this file")
	dotOut := flag.String("dot", "", "write the task DAG in Graphviz DOT format to this file (truncated to 2000 tasks)")
	flag.Parse()

	if err := run(*app, *sched, *platformName, *tiles, *tile, *prios, *particles, *height, *clustered, *matrix, *streams, *gantt, *width, *locN, *eps, *hist, *chromeOut, *csvOut, *dotOut); err != nil {
		fmt.Fprintf(os.Stderr, "multiprio-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(app, sched, platformName string, tiles, tile int, prios bool, particles, height int, clustered bool, matrix string, streams int, gantt bool, width, locN int, eps float64, hist bool, chromeOut, csvOut, dotOut string) error {
	m, err := experiments.PlatformByName(platformName, streams)
	if err != nil {
		return err
	}
	var g *runtime.Graph
	switch app {
	case "cholesky":
		g = dense.Cholesky(dense.Params{Tiles: tiles, TileSize: tile, Machine: m, UserPriorities: prios})
	case "lu":
		g = dense.LU(dense.Params{Tiles: tiles, TileSize: tile, Machine: m, UserPriorities: prios})
	case "qr":
		g = dense.QR(dense.Params{Tiles: tiles, TileSize: tile, Machine: m, UserPriorities: prios})
	case "hier":
		g = dense.HierarchicalCholesky(dense.HierParams{
			Blocks: tiles, SubTiles: 5, TileSize: tile, Machine: m, UserPriorities: prios,
		})
	case "fmm":
		g = fmm.Build(fmm.Params{Particles: particles, Height: height, Clustered: clustered, Machine: m, Seed: 12})
	case "sparseqr":
		stats, ok := sparseqr.ByName(matrix)
		if !ok {
			return fmt.Errorf("unknown matrix %q", matrix)
		}
		g = sparseqr.Build(stats, sparseqr.Params{Machine: m})
	default:
		return fmt.Errorf("unknown app %q", app)
	}

	var s runtime.Scheduler
	if sched == "multiprio" && (locN > 0 || eps > 0) {
		cfg := core.Defaults()
		if locN > 0 {
			cfg.LocalityWindow = locN
		}
		if eps > 0 {
			cfg.Epsilon = eps
		}
		s = core.New(cfg)
	} else {
		var err error
		s, err = experiments.NewScheduler(sched)
		if err != nil {
			return err
		}
	}
	opts := sim.Options{}
	if hist {
		h := perfmodel.NewHistory()
		opts.History = h
		opts.Estimator = h
	}
	res, err := sim.Run(m, g, s, opts)
	if err != nil {
		return err
	}
	if mp, ok := s.(*core.Sched); ok {
		defer fmt.Printf("  multiprio evictions: %d\n", mp.Evictions)
	}

	fmt.Printf("%s on %s under %s: %d tasks, %.1f Gflop\n",
		app, m, s.Name(), len(g.Tasks), g.TotalFlops()/1e9)
	fmt.Print(res.Trace.Summary())
	fmt.Printf("  achieved %.0f GFlop/s; critical path bound %.4fs; serial best %.4fs\n",
		g.TotalFlops()/res.Makespan/1e9, g.CriticalPathTime(), g.SerialTime())
	var waitTotal float64
	for _, sp := range res.Trace.Spans {
		waitTotal += sp.Wait
	}
	fmt.Printf("  total transfer-wait inside spans: %.4fs\n", waitTotal)
	type key struct {
		kind string
		arch string
	}
	cnt := map[key]int{}
	tim := map[key]float64{}
	for _, sp := range res.Trace.Spans {
		k := key{sp.Kind, m.ArchName(m.Units[sp.Worker].Arch)}
		cnt[k]++
		tim[k] += sp.End - sp.Start - sp.Wait
	}
	keys := make([]key, 0, len(cnt))
	for k := range cnt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].arch < keys[j].arch
	})
	for _, k := range keys {
		fmt.Printf("  %-10s %-4s %6d tasks %9.4fs\n", k.kind, k.arch, cnt[k], tim[k])
	}
	for mem, ov := range res.OverflowBytes {
		if ov > 0 {
			fmt.Printf("  memory overflow on node %d: %d bytes\n", mem, ov)
		}
	}
	cp := trace.PracticalCriticalPath(g)
	fmt.Printf("  practical critical path: %d tasks:", len(cp))
	for i, t := range cp {
		if i >= 12 {
			fmt.Printf(" ... (+%d more)", len(cp)-i)
			break
		}
		fmt.Printf(" %s", t.Kind)
	}
	fmt.Println()
	if gantt {
		fmt.Println(res.Trace.Gantt(width))
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote Chrome trace to %s\n", chromeOut)
	}
	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, 2000); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote DAG to %s\n", dotOut)
	}
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote CSV spans to %s\n", csvOut)
	}
	return nil
}
