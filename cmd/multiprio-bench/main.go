// Command multiprio-bench regenerates the tables and figures of the
// paper's evaluation (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	multiprio-bench -exp table2|fig3|fig4|fig5|fig6|fig8|ablation|faults|static|stragglers|cluster|telemetry|all [-scale quick|full] [-gantt]
//	                [-j N] [-fallback policy] [-cpuprofile f.pprof] [-memprofile f.pprof]
//	                [-serve :9090] [-export run.jsonl] [-linger 30s]
//
// The sweep experiments (fig5, fig6, fig8, ablation, stress) run their
// configuration grids on a pool of -j workers; tables are byte-identical
// for every -j value (results are reduced in configuration order).
//
// With -serve the process becomes a scrapeable daemon while the
// experiments run: a telemetry probe observes every engine run and a
// stdlib HTTP server exposes /metrics (Prometheus text format),
// /healthz, /readyz, /debug/vars and /debug/pprof on the given address;
// -linger keeps the endpoint up for the given duration after the last
// experiment so scrapers can collect the final state. With -export the
// probe additionally captures decision events and writes a
// schema-versioned JSONL run export to the given path on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"multiprio/internal/experiments"
	"multiprio/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2, fig3, fig4, fig5, fig6, fig7, fig8, ablation, hier, energy, stress, overhead, faults, static, stragglers, cluster, stream, telemetry, all")
	scaleFlag := flag.String("scale", "quick", "problem sizing: quick (seconds) or full (paper-scale, minutes)")
	gantt := flag.Bool("gantt", false, "include ASCII Gantt traces where applicable (fig4)")
	quick := flag.Bool("quick", false, "shorthand for -scale quick (CI smoke runs)")
	jobs := flag.Int("j", runtime.NumCPU(), "sweep worker-pool size (1 = serial; output is identical either way)")
	fallback := flag.String("fallback", "multiprio", "dynamic fallback policy for -exp static (hybrid repair target and the study's dynamic row)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	serveAddr := flag.String("serve", "", "serve telemetry (/metrics, /healthz, /readyz, /debug/*) on this address while experiments run")
	exportPath := flag.String("export", "", "write a JSONL telemetry run export to this file at exit (enables decision capture)")
	linger := flag.Duration("linger", 0, "keep the -serve endpoint up this long after the last experiment")
	flag.Parse()

	if *quick {
		*scaleFlag = "quick"
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	experiments.SetWorkers(*jobs)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", err)
			os.Exit(1)
		}
	}

	// Telemetry wiring: one probe observes every engine run the
	// experiment drivers execute; the server (if any) outlives the runs
	// by -linger so the final state is scrapeable.
	var probe *telemetry.Probe
	var server *telemetry.Server
	if *serveAddr != "" || *exportPath != "" {
		var popts []telemetry.ProbeOption
		if *exportPath != "" {
			popts = append(popts, telemetry.WithDecisionCapture(1<<21))
		}
		probe = telemetry.NewProbe(popts...)
		experiments.SetObserver(probe)
		if *serveAddr != "" {
			var serr error
			server, serr = telemetry.Serve(*serveAddr, probe)
			if serr != nil {
				fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", serr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "multiprio-bench: telemetry on http://%s/metrics\n", server.Addr())
		}
	}

	err := run(*exp, scale, *gantt, *fallback)

	if server != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "multiprio-bench: lingering %s on http://%s\n", *linger, server.Addr())
			time.Sleep(*linger)
		}
		if cerr := server.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: telemetry shutdown: %v\n", cerr)
		}
	}
	if probe != nil && *exportPath != "" {
		f, ferr := os.Create(*exportPath)
		if ferr == nil {
			ferr = telemetry.ExportJSONL(f, probe)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: export: %v\n", ferr)
			os.Exit(1)
		}
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", merr)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live set
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", merr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintf(os.Stderr, "multiprio-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, scale experiments.Scale, gantt bool, fallback string) error {
	out := os.Stdout
	prog := os.Stderr

	type printer interface{ Print(w *os.File) }
	_ = printer(nil)

	runs := map[string]func() error{
		"table2": func() error {
			r, err := experiments.RunTable2()
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig3": func() error {
			r, err := experiments.RunFig3()
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig4": func() error {
			r, err := experiments.RunFig4(scale, gantt)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig5": func() error {
			r, err := experiments.RunFig5(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig6": func() error {
			r, err := experiments.RunFig6(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig7": func() error {
			r, err := experiments.RunFig7()
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"fig8": func() error {
			r, err := experiments.RunFig8(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"overhead": func() error {
			r, err := experiments.RunOverhead(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"stress": func() error {
			r, err := experiments.RunStress(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"hier": func() error {
			r, err := experiments.RunHier(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"energy": func() error {
			r, err := experiments.RunEnergy(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"ablation": func() error {
			r, err := experiments.RunAblation(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"faults": func() error {
			r, err := experiments.RunFaults(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"static": func() error {
			r, err := experiments.RunStatic(scale, fallback, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"stragglers": func() error {
			r, err := experiments.RunStragglers(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"cluster": func() error {
			r, err := experiments.RunCluster(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"stream": func() error {
			r, err := experiments.RunStream(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"telemetry": func() error {
			r, err := experiments.RunTelemetry(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
		"scale": func() error {
			r, err := experiments.RunScale(scale, prog)
			if err != nil {
				return err
			}
			r.Print(out)
			return nil
		},
	}

	if exp == "all" {
		for _, name := range []string{"table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation", "hier", "energy", "stress", "overhead", "faults", "static", "stragglers", "cluster", "stream", "telemetry", "scale"} {
			fmt.Fprintf(out, "\n========== %s ==========\n", name)
			if err := runs[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := runs[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return f()
}
